package crdt

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// genState produces a pseudo-random state of one payload type from r.
type genState func(r *rand.Rand) State

// generators drives the lattice-law and codec property tests across every
// payload type shipped by the package.
var generators = map[string]genState{
	TypeGCounter: func(r *rand.Rand) State {
		c := NewGCounter()
		for i := 0; i < r.Intn(5); i++ {
			c = c.Inc(fmt.Sprintf("r%d", r.Intn(4)), uint64(r.Intn(10)+1))
		}
		return c
	},
	TypePNCounter: func(r *rand.Rand) State {
		c := NewPNCounter()
		for i := 0; i < r.Intn(5); i++ {
			rep := fmt.Sprintf("r%d", r.Intn(4))
			if r.Intn(2) == 0 {
				c = c.Inc(rep, uint64(r.Intn(10)+1))
			} else {
				c = c.Dec(rep, uint64(r.Intn(10)+1))
			}
		}
		return c
	},
	TypeMaxRegister: func(r *rand.Rand) State {
		m := NewMaxRegister()
		for i := 0; i < r.Intn(4); i++ {
			m = m.Set(int64(r.Intn(100) - 50))
		}
		return m
	},
	TypeLWWRegister: func(r *rand.Rand) State {
		l := NewLWWRegister()
		for i := 0; i < r.Intn(4); i++ {
			l = l.Set(fmt.Sprintf("v%d", r.Intn(8)), uint64(r.Intn(20)), fmt.Sprintf("a%d", r.Intn(3)))
		}
		return l
	},
	TypeMVRegister: func(r *rand.Rand) State {
		m := NewMVRegister()
		for i := 0; i < r.Intn(4); i++ {
			m = m.Set(fmt.Sprintf("v%d", r.Intn(8)), fmt.Sprintf("a%d", r.Intn(3)))
		}
		return m
	},
	TypeGSet: func(r *rand.Rand) State {
		s := NewGSet()
		for i := 0; i < r.Intn(6); i++ {
			s = s.Add(fmt.Sprintf("e%d", r.Intn(10)))
		}
		return s
	},
	TypeTwoPSet: func(r *rand.Rand) State {
		s := NewTwoPSet()
		for i := 0; i < r.Intn(6); i++ {
			e := fmt.Sprintf("e%d", r.Intn(10))
			if r.Intn(3) == 0 {
				s = s.Remove(e)
			} else {
				s = s.Add(e)
			}
		}
		return s
	},
	TypeORSet: func(r *rand.Rand) State {
		s := NewORSet()
		for i := 0; i < r.Intn(6); i++ {
			e := fmt.Sprintf("e%d", r.Intn(10))
			if r.Intn(3) == 0 {
				s = s.Remove(e)
			} else {
				s = s.Add(e, fmt.Sprintf("a%d", r.Intn(3)), uint64(r.Intn(100)))
			}
		}
		return s
	},
	TypeEWFlag: func(r *rand.Rand) State {
		f := NewEWFlag()
		for i := 0; i < r.Intn(5); i++ {
			if r.Intn(3) == 0 {
				f = f.Disable()
			} else {
				f = f.Enable(fmt.Sprintf("a%d", r.Intn(3)), uint64(r.Intn(100)))
			}
		}
		return f
	},
	TypeLWWMap: func(r *rand.Rand) State {
		m := NewLWWMap()
		for i := 0; i < r.Intn(6); i++ {
			k := fmt.Sprintf("k%d", r.Intn(5))
			if r.Intn(4) == 0 {
				m = m.Delete(k, uint64(r.Intn(20)), fmt.Sprintf("a%d", r.Intn(3)))
			} else {
				m = m.Set(k, fmt.Sprintf("v%d", r.Intn(8)), uint64(r.Intn(20)), fmt.Sprintf("a%d", r.Intn(3)))
			}
		}
		return m
	},
	TypeVClock: func(r *rand.Rand) State {
		v := NewVClock()
		for i := 0; i < r.Intn(6); i++ {
			v = v.Tick(fmt.Sprintf("a%d", r.Intn(4)))
		}
		return v
	},
}

func mustEquivalent(t *testing.T, a, b State) bool {
	t.Helper()
	eq, err := Equivalent(a, b)
	if err != nil {
		t.Fatalf("Equivalent(%v, %v): %v", a, b, err)
	}
	return eq
}

// TestLatticeLaws checks the join-semilattice laws of Definitions 1-3 of
// the paper for every payload type: idempotence, commutativity,
// associativity, that the join is an upper bound, and that Compare is
// consistent with Merge (a ⊑ b ⇔ a ⊔ b ≡ b).
func TestLatticeLaws(t *testing.T) {
	for name, gen := range generators {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(42))
			for i := 0; i < 300; i++ {
				a, b, c := gen(r), gen(r), gen(r)

				// Idempotence: a ⊔ a ≡ a.
				if !mustEquivalent(t, MustMerge(a, a), a) {
					t.Fatalf("idempotence violated: %v", a)
				}
				// Commutativity: a ⊔ b ≡ b ⊔ a.
				if !mustEquivalent(t, MustMerge(a, b), MustMerge(b, a)) {
					t.Fatalf("commutativity violated: %v, %v", a, b)
				}
				// Associativity: (a ⊔ b) ⊔ c ≡ a ⊔ (b ⊔ c).
				if !mustEquivalent(t, MustMerge(MustMerge(a, b), c), MustMerge(a, MustMerge(b, c))) {
					t.Fatalf("associativity violated: %v, %v, %v", a, b, c)
				}
				// Upper bound: a ⊑ a ⊔ b and b ⊑ a ⊔ b.
				ab := MustMerge(a, b)
				if le, _ := a.Compare(ab); !le {
					t.Fatalf("a not below a⊔b: %v vs %v", a, ab)
				}
				if le, _ := b.Compare(ab); !le {
					t.Fatalf("b not below a⊔b: %v vs %v", b, ab)
				}
				// Order/join consistency: a ⊑ b ⇔ a ⊔ b ≡ b.
				le, err := a.Compare(b)
				if err != nil {
					t.Fatal(err)
				}
				if le != mustEquivalent(t, ab, b) {
					t.Fatalf("compare/merge inconsistency: a=%v b=%v a⊑b=%t a⊔b=%v", a, b, le, ab)
				}
			}
		})
	}
}

// TestCompareReflexiveTransitive checks that ⊑ is a partial order on
// randomly generated states.
func TestCompareReflexiveTransitive(t *testing.T) {
	for name, gen := range generators {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(7))
			for i := 0; i < 200; i++ {
				a := gen(r)
				if le, _ := a.Compare(a); !le {
					t.Fatalf("reflexivity violated: %v", a)
				}
				// Build a guaranteed chain a ⊑ ab ⊑ abc and check transitivity
				// via the direct comparison a ⊑ abc.
				ab := MustMerge(a, gen(r))
				abc := MustMerge(ab, gen(r))
				if le, _ := a.Compare(abc); !le {
					t.Fatalf("transitivity violated: %v !⊑ %v", a, abc)
				}
			}
		})
	}
}

// TestCodecRoundTrip checks that Marshal/Unmarshal preserve equivalence for
// every payload type and that the encoding is deterministic (equal states
// encode to identical bytes — required so acceptors can compare encoded
// payloads cheaply and tests can diff states).
func TestCodecRoundTrip(t *testing.T) {
	for name, gen := range generators {
		t.Run(name, func(t *testing.T) {
			r := rand.New(rand.NewSource(99))
			for i := 0; i < 200; i++ {
				s := gen(r)
				raw, err := Marshal(s)
				if err != nil {
					t.Fatalf("Marshal: %v", err)
				}
				back, err := Unmarshal(raw)
				if err != nil {
					t.Fatalf("Unmarshal: %v", err)
				}
				if back.TypeName() != s.TypeName() {
					t.Fatalf("type changed: %s -> %s", s.TypeName(), back.TypeName())
				}
				if !mustEquivalent(t, s, back) {
					t.Fatalf("round trip not equivalent: %v vs %v", s, back)
				}
				raw2, err := Marshal(back)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(raw, raw2) {
					t.Fatalf("non-deterministic encoding for %s", name)
				}
			}
		})
	}
}

// TestUnmarshalRejectsGarbage checks the codecs fail cleanly on corrupt and
// truncated inputs rather than decoding nonsense.
func TestUnmarshalRejectsGarbage(t *testing.T) {
	if _, err := Unmarshal(nil); err == nil {
		t.Fatal("Unmarshal(nil) succeeded")
	}
	if _, err := Unmarshal([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Fatal("Unmarshal(garbage) succeeded")
	}
	// Valid envelope, unregistered type.
	e := newEncBuf(16)
	e.str("no-such-type")
	e.raw(nil)
	if _, err := Unmarshal(e.bytes()); err == nil {
		t.Fatal("Unmarshal of unregistered type succeeded")
	}
	// Truncated payloads of every registered type.
	r := rand.New(rand.NewSource(3))
	for name, gen := range generators {
		raw, err := Marshal(gen(r))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for cut := 1; cut < len(raw); cut += 3 {
			if s, err := Unmarshal(raw[:cut]); err == nil {
				// A shorter prefix may occasionally parse (e.g. an empty
				// payload); it must at least be a valid state, not junk.
				if s == nil {
					t.Fatalf("%s: truncated decode returned nil state", name)
				}
			}
		}
	}
}

// TestMergeTypeMismatch checks that merging or comparing different payload
// types reports ErrTypeMismatch for every pair of distinct types.
func TestMergeTypeMismatch(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	states := make([]State, 0, len(generators))
	for _, gen := range generators {
		states = append(states, gen(r))
	}
	for _, a := range states {
		for _, b := range states {
			if a.TypeName() == b.TypeName() {
				continue
			}
			if _, err := a.Merge(b); err == nil {
				t.Fatalf("Merge(%s, %s) did not fail", a.TypeName(), b.TypeName())
			}
			if _, err := a.Compare(b); err == nil {
				t.Fatalf("Compare(%s, %s) did not fail", a.TypeName(), b.TypeName())
			}
		}
	}
}

// TestQuickGCounterMergeNeverLoses uses testing/quick to check that merging
// any interleaving of per-replica increments preserves every replica's
// contribution — the core convergence argument of Algorithm 1.
func TestQuickGCounterMergeNeverLoses(t *testing.T) {
	f := func(incsA, incsB []uint8) bool {
		a, b := NewGCounter(), NewGCounter()
		var sumA, sumB uint64
		for _, n := range incsA {
			a = a.Inc("A", uint64(n))
			sumA += uint64(n)
		}
		for _, n := range incsB {
			b = b.Inc("B", uint64(n))
			sumB += uint64(n)
		}
		m := MustMerge(a, b).(*GCounter)
		return m.Value() == sumA+sumB && m.Slot("A") == sumA && m.Slot("B") == sumB
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMergeAllOrderInsensitive uses testing/quick to check that the
// LUB of a set of states is independent of fold order — the property that
// lets proposers compute ⊔S̆ from ACK payloads in arrival order.
func TestQuickMergeAllOrderInsensitive(t *testing.T) {
	f := func(seed int64, perm []int) bool {
		r := rand.New(rand.NewSource(seed))
		states := make([]State, 5)
		for i := range states {
			states[i] = generators[TypeORSet](r)
		}
		forward, err := MergeAll(states...)
		if err != nil {
			return false
		}
		shuffled := make([]State, len(states))
		copy(shuffled, states)
		r2 := rand.New(rand.NewSource(seed + 1))
		r2.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		backward, err := MergeAll(shuffled...)
		if err != nil {
			return false
		}
		eq, err := Equivalent(forward, backward)
		return err == nil && eq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUpdatesMonotone uses testing/quick to check Definition 3's
// requirement s ⊑ u(s) for the mutators used by the replication protocol.
func TestQuickUpdatesMonotone(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		for name, gen := range generators {
			before := gen(r)
			after := gen(r)
			merged := MustMerge(before, after)
			le, err := before.Compare(merged)
			if err != nil || !le {
				t.Logf("%s: %v not ⊑ %v", name, before, merged)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeAllEmpty(t *testing.T) {
	if _, err := MergeAll(); err == nil {
		t.Fatal("MergeAll() of nothing should fail")
	}
}

func TestComparableIncomparableStates(t *testing.T) {
	a := NewGCounter().Inc("A", 1)
	b := NewGCounter().Inc("B", 1)
	ok, err := Comparable(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("%v and %v should be incomparable", a, b)
	}
	ok, err = Comparable(a, MustMerge(a, b))
	if err != nil || !ok {
		t.Fatalf("a should be comparable with a⊔b (err=%v)", err)
	}
}
