// Package crdt implements state-based conflict-free replicated data types
// (CRDTs) as join semilattices, following Shapiro et al. (SSS 2011) and the
// formulation in Skrzypczak et al. (PODC 2019), §2.2.
//
// Every payload type implements State. A State is a point in a join
// semilattice: Merge computes the least upper bound (⊔) and Compare the
// partial order (⊑). States are immutable values: Merge and all mutators
// return fresh payloads and never modify their operands, so states can be
// shared freely between replicas, protocol goroutines, and histories.
//
// The package ships the G-Counter of the paper's Algorithm 1 plus the
// common state-based types from the CRDT literature (PN-Counter, Max- and
// LWW-Registers, MV-Register, G-Set, 2P-Set, OR-Set, EW-Flag, LWW-Map,
// vector clocks) and a delta-mutation extension (Almeida et al., NETYS 2015)
// used by the delta-merge ablation benchmark.
package crdt
