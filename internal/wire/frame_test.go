package wire

import (
	"bufio"
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{Op: OpUpdate, ID: 7, Key: "article/42", CRDTType: "g-counter", Mutation: "inc", Args: [][]byte{{5}}},
		{Op: OpUpdate, ID: 0, Key: "", CRDTType: "or-set", Mutation: "add", Args: [][]byte{[]byte("alice"), nil}},
		{Op: OpQuery, ID: 1 << 40, Key: "sessions/eu"},
		{Op: OpAdmin, ID: 3, Cmd: "ping"},
	}
	for _, in := range cases {
		got, err := DecodeRequest(in.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", in, err)
		}
		// Raw() returns nil for empty args; normalize for comparison.
		for i, a := range in.Args {
			if len(a) == 0 {
				in.Args[i] = []byte{}
			}
		}
		for i, a := range got.Args {
			if len(a) == 0 {
				got.Args[i] = []byte{}
			}
		}
		if !reflect.DeepEqual(&in, got) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, *got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{Op: OpUpdate | RespBit, ID: 7, Status: StatusOK, RoundTrips: 1},
		{Op: OpQuery | RespBit, ID: 9, Status: StatusOK, RoundTrips: 2, Attempts: 1, Path: 1, State: []byte{1, 2, 3}},
		{Op: OpAdmin | RespBit, ID: 1, Status: StatusOK, Payload: []byte("pong")},
		{Op: OpUpdate | RespBit, ID: 4, Status: StatusUnavailable, Msg: "node crashed"},
		{Op: OpQuery | RespBit, ID: 5, Status: StatusError, Msg: "type mismatch"},
		{Op: OpUpdate | RespBit, ID: 6, Status: StatusBusy, Msg: "in-flight limit"},
		// The busy-close handshake frame: admin op, request ID 0.
		{Op: OpAdmin | RespBit, ID: 0, Status: StatusBusy, Msg: "connection limit"},
	}
	for _, in := range cases {
		got, err := DecodeResponse(in.Encode())
		if err != nil {
			t.Fatalf("decode %+v: %v", in, err)
		}
		if len(got.State) == 0 {
			got.State = in.State[:0]
		}
		if len(got.Payload) == 0 {
			got.Payload = in.Payload[:0]
		}
		if got.Op != in.Op || got.ID != in.ID || got.Status != in.Status ||
			got.RoundTrips != in.RoundTrips || got.Attempts != in.Attempts ||
			got.Path != in.Path || got.Msg != in.Msg ||
			!bytes.Equal(got.State, in.State) || !bytes.Equal(got.Payload, in.Payload) {
			t.Fatalf("round trip mismatch:\n in  %+v\n out %+v", in, *got)
		}
	}
}

// TestResponseStatusRoundTrip is the exhaustive property test of the
// status path: for every op × every defined status code (plus unknown
// future codes, which §2.7 rule 3 obliges peers to carry opaquely), an
// encoded response must decode back to the identical status and message.
// The non-OK body shape is shared across ops, so this is the surface a
// client's entire error taxonomy rides on.
func TestResponseStatusRoundTrip(t *testing.T) {
	ops := []byte{OpUpdate | RespBit, OpQuery | RespBit, OpAdmin | RespBit}
	statuses := []byte{StatusUnavailable, StatusUncertain, StatusBadRequest, StatusError, StatusBusy, 9, 255}
	msgs := []string{"", "node crashed", "unicode état ⊥", string(make([]byte, 4096))}
	for _, op := range ops {
		for _, status := range statuses {
			for _, msg := range msgs {
				in := Response{Op: op, ID: 1<<63 + 7, Status: status, Msg: msg}
				got, err := DecodeResponse(in.Encode())
				if err != nil {
					t.Fatalf("op 0x%02x status %d: decode: %v", op, status, err)
				}
				if got.Op != in.Op || got.ID != in.ID || got.Status != in.Status || got.Msg != in.Msg {
					t.Fatalf("op 0x%02x status %d: round trip mismatch:\n in  %+v\n out %+v", op, status, in, *got)
				}
				// Error-status bodies must not leak OK-only fields.
				if got.RoundTrips != 0 || got.Attempts != 0 || got.Path != 0 || got.State != nil || got.Payload != nil {
					t.Fatalf("op 0x%02x status %d: non-OK decode populated OK fields: %+v", op, status, *got)
				}
			}
		}
	}
}

func TestDecodeRequestRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"bad version":   {99, OpQuery, 1, 0},
		"unknown op":    {FrameVersion, 0x7f, 1},
		"response op":   {FrameVersion, OpQuery | RespBit, 1, 0},
		"truncated key": {FrameVersion, OpQuery, 1, 200},
		"truncated varint": append([]byte{FrameVersion, OpUpdate, 1},
			0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff),
	}
	for name, frame := range cases {
		if _, err := DecodeRequest(frame); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Oversized arg count.
	w := NewWriter(16)
	w.Byte(FrameVersion)
	w.Byte(OpUpdate)
	w.Uvarint(1)
	w.Str("k")
	w.Str("g-counter")
	w.Str("inc")
	w.Uvarint(MaxArgs + 1)
	if _, err := DecodeRequest(w.Bytes()); err == nil {
		t.Error("oversized arg count decoded without error")
	}
	// Oversized frame.
	if _, err := DecodeRequest(make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Errorf("oversized frame: got %v, want ErrFrameTooLarge", err)
	}
}

func TestDecodeRequestToleratesTrailingBytes(t *testing.T) {
	frame := (&Request{Op: OpQuery, ID: 2, Key: "k"}).Encode()
	frame = append(frame, 0xde, 0xad)
	req, err := DecodeRequest(frame)
	if err != nil {
		t.Fatalf("trailing bytes rejected: %v", err)
	}
	if req.Key != "k" || req.ID != 2 {
		t.Fatalf("decoded %+v", req)
	}
}

func TestDecodeResponseRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":             {},
		"bad version":       {42, OpQuery | RespBit, 1, StatusOK},
		"missing bit":       {FrameVersion, OpQuery, 1, StatusOK},
		"unknown op":        {FrameVersion, 0x7f | RespBit, 1, StatusOK},
		"unknown op non-ok": {FrameVersion, 0x7f | RespBit, 1, StatusUnavailable, 0},
		"truncated ok":      {FrameVersion, OpQuery | RespBit, 1, StatusOK, 1},
	}
	for name, frame := range cases {
		if _, err := DecodeResponse(frame); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}

func TestFrameIO(t *testing.T) {
	var buf bytes.Buffer
	frames := [][]byte{{1}, bytes.Repeat([]byte{7}, 1000), {}}
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	br := bufio.NewReader(&buf)
	for i, want := range frames {
		got, err := ReadFrame(br)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("frame %d: got %d bytes, want %d", i, len(got), len(want))
		}
	}
	// A length prefix over the limit must be rejected before allocation.
	var huge bytes.Buffer
	w := NewWriter(16)
	w.Uvarint(MaxFrame + 1)
	huge.Write(w.Bytes())
	if _, err := ReadFrame(bufio.NewReader(&huge)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized prefix: got %v, want ErrFrameTooLarge", err)
	}
	if err := WriteFrame(&huge, make([]byte, MaxFrame+1)); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized write: got %v, want ErrFrameTooLarge", err)
	}
}

// FuzzDecodeRequest asserts the request decoder never panics and that
// every frame it accepts re-encodes decodably (malformed, truncated, and
// oversized inputs must error out instead).
func FuzzDecodeRequest(f *testing.F) {
	f.Add((&Request{Op: OpUpdate, ID: 1, Key: "k", CRDTType: "g-counter", Mutation: "inc", Args: [][]byte{{1}}}).Encode())
	f.Add((&Request{Op: OpQuery, ID: 2, Key: "obj/1"}).Encode())
	f.Add((&Request{Op: OpAdmin, ID: 3, Cmd: "keys"}).Encode())
	f.Add([]byte{FrameVersion, OpUpdate})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, frame []byte) {
		req, err := DecodeRequest(frame)
		if err != nil {
			return
		}
		if _, err := DecodeRequest(req.Encode()); err != nil {
			t.Fatalf("accepted frame re-encodes undecodably: %v", err)
		}
	})
}

// FuzzDecodeResponse is the response-side twin of FuzzDecodeRequest,
// with a stronger property on the status path: beyond re-encoding
// decodably, every accepted frame must round-trip encode→decode to the
// identical response — in particular the status code and message, which
// carry the client's whole error taxonomy. The seeds cover every defined
// error status plus an unknown future code.
func FuzzDecodeResponse(f *testing.F) {
	f.Add((&Response{Op: OpQuery | RespBit, ID: 1, Status: StatusOK, State: []byte{1}}).Encode())
	f.Add((&Response{Op: OpUpdate | RespBit, ID: 2, Status: StatusUnavailable, Msg: "x"}).Encode())
	f.Add((&Response{Op: OpQuery | RespBit, ID: 3, Status: StatusUncertain, Msg: "timed out mid-protocol"}).Encode())
	f.Add((&Response{Op: OpAdmin | RespBit, ID: 4, Status: StatusBadRequest, Msg: "unknown admin command"}).Encode())
	f.Add((&Response{Op: OpUpdate | RespBit, ID: 5, Status: StatusError, Msg: "type mismatch"}).Encode())
	f.Add((&Response{Op: OpQuery | RespBit, ID: 6, Status: 9, Msg: "status from the future"}).Encode())
	f.Add((&Response{Op: OpUpdate | RespBit, ID: 8, Status: StatusBusy, Msg: "in-flight limit"}).Encode())
	f.Add((&Response{Op: OpAdmin | RespBit, ID: 0, Status: StatusBusy, Msg: "connection limit"}).Encode())
	f.Add((&Response{Op: OpUpdate | RespBit, ID: 7, Status: StatusUnavailable}).Encode())
	f.Add([]byte{FrameVersion})
	f.Fuzz(func(t *testing.T, frame []byte) {
		resp, err := DecodeResponse(frame)
		if err != nil {
			return
		}
		again, err := DecodeResponse(resp.Encode())
		if err != nil {
			t.Fatalf("accepted frame re-encodes undecodably: %v", err)
		}
		if again.Op != resp.Op || again.ID != resp.ID || again.Status != resp.Status || again.Msg != resp.Msg ||
			again.RoundTrips != resp.RoundTrips || again.Attempts != resp.Attempts || again.Path != resp.Path ||
			!bytes.Equal(again.State, resp.State) || !bytes.Equal(again.Payload, resp.Payload) {
			t.Fatalf("encode/decode not idempotent:\n first  %+v\n second %+v", *resp, *again)
		}
	})
}
