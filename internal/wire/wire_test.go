package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.Byte(7)
	w.Bool(true)
	w.Bool(false)
	w.Uvarint(0)
	w.Uvarint(1<<63 + 5)
	w.Varint(-42)
	w.Varint(1 << 40)
	w.Str("")
	w.Str("hello, 世界")
	w.Raw(nil)
	w.Raw([]byte{0, 1, 2, 255})

	r := NewReader(w.Bytes())
	if got := r.Byte(); got != 7 {
		t.Fatalf("Byte = %d", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatal("Bool mismatch")
	}
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<63+5 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -42 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.Varint(); got != 1<<40 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.Str(); got != "" {
		t.Fatalf("Str = %q", got)
	}
	if got := r.Str(); got != "hello, 世界" {
		t.Fatalf("Str = %q", got)
	}
	if got := r.Raw(); len(got) != 0 {
		t.Fatalf("Raw = %v", got)
	}
	if got := r.Raw(); !bytes.Equal(got, []byte{0, 1, 2, 255}) {
		t.Fatalf("Raw = %v", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestReaderTruncation(t *testing.T) {
	w := NewWriter(16)
	w.Str("abcdef")
	w.Uvarint(300)
	full := w.Bytes()
	for cut := 0; cut < len(full); cut++ {
		r := NewReader(full[:cut])
		_ = r.Str()
		_ = r.Uvarint()
		if err := r.Done(); err == nil {
			t.Fatalf("cut=%d: expected error", cut)
		}
	}
}

func TestReaderTrailingBytes(t *testing.T) {
	w := NewWriter(8)
	w.Uvarint(1)
	w.Byte(9)
	r := NewReader(w.Bytes())
	_ = r.Uvarint()
	if err := r.Done(); err == nil {
		t.Fatal("expected trailing-bytes error")
	}
}

func TestReaderErrSticky(t *testing.T) {
	r := NewReader(nil)
	_ = r.Uvarint()
	if r.Err() == nil {
		t.Fatal("expected error after empty read")
	}
	// Subsequent reads keep returning zero values without panicking.
	if got := r.Str(); got != "" {
		t.Fatalf("Str after error = %q", got)
	}
	if got := r.Raw(); got != nil {
		t.Fatalf("Raw after error = %v", got)
	}
	if r.Done() == nil {
		t.Fatal("Done should surface the error")
	}
}

func TestQuickVarintRoundTrip(t *testing.T) {
	f := func(u uint64, v int64, s string, p []byte) bool {
		w := NewWriter(32)
		w.Uvarint(u)
		w.Varint(v)
		w.Str(s)
		w.Raw(p)
		r := NewReader(w.Bytes())
		gu, gv, gs, gp := r.Uvarint(), r.Varint(), r.Str(), r.Raw()
		return r.Done() == nil && gu == u && gv == v && gs == s && bytes.Equal(gp, p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestRawCopies(t *testing.T) {
	w := NewWriter(8)
	w.Raw([]byte{1, 2, 3})
	buf := w.Bytes()
	r := NewReader(buf)
	got := r.Raw()
	buf[len(buf)-1] = 99 // mutate the source
	if got[2] != 3 {
		t.Fatal("Raw must return a copy independent of the input buffer")
	}
}
