package wire

// ConfigFrame is the membership section of the replica wire's RECONFIG
// and EPOCH-NACK frames (docs/PROTOCOL.md §6): the configuration epoch,
// the proposer that minted it, and the member set. Layout:
//
//	epoch uvarint | source str | count uvarint | member str ...
type ConfigFrame struct {
	Epoch   uint64
	Source  string
	Members []string
}

// Append serializes the frame.
func (c ConfigFrame) Append(w *Writer) {
	w.Uvarint(c.Epoch)
	w.Str(c.Source)
	w.Uvarint(uint64(len(c.Members)))
	for _, m := range c.Members {
		w.Str(m)
	}
}

// ReadConfigFrame parses a frame produced by Append. Errors are recorded
// on the reader; the member list is built incrementally, so a corrupt
// count cannot force a huge allocation.
func ReadConfigFrame(r *Reader) ConfigFrame {
	c := ConfigFrame{Epoch: r.Uvarint(), Source: r.Str()}
	n := r.Uvarint()
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		c.Members = append(c.Members, r.Str())
	}
	return c
}
