package wire

import "testing"

// The hot encode paths — protocol messages, state frames, envelopes —
// promise exactly one allocation per encoded frame: the output buffer
// itself. These tests pin that promise with AllocsPerRun so a regression
// (an escaping Writer, an undersized buffer forcing append to grow) fails
// the suite, and the benchmarks report allocs/op for the CI bench-smoke
// guard (`go test -bench . -benchmem ./internal/wire/`).

// encodeRepresentative builds a frame shaped like the protocol's VOTE
// with a delta state transfer — the widest layout on the hot path: a
// type byte, request/attempt varints, a round (number + proposer +
// sequence), and a delta state frame (two digests plus payload).
func encodeRepresentative(proposer string, payload []byte) []byte {
	var digest, baseline [DigestSize]byte
	w := MakeWriter(make([]byte, 0, 128+2*len(proposer)+len(payload)))
	w.Byte(0x05)
	w.Uvarint(42)   // request ID
	w.Uvarint(3)    // attempt
	w.Varint(17)    // round number
	w.Str(proposer) // round ID proposer
	w.Uvarint(9)    // round ID sequence
	StateFrame{Kind: StateDelta, State: payload, Digest: digest, Baseline: baseline}.Append(&w)
	return w.Bytes()
}

func TestEncodeAllocs(t *testing.T) {
	payload := make([]byte, 512)
	frame := PackEnvelope("accounts/alice", payload)
	cases := []struct {
		name string
		want float64
		fn   func()
	}{
		{"message", 1, func() { encodeRepresentative("n1", payload) }},
		{"envelope", 1, func() { PackEnvelope("accounts/alice", payload) }},
		// Unpacking borrows the frame's tail for the payload; its single
		// allocation is the objectID string.
		{"unpack", 1, func() { _, _, _ = UnpackEnvelope(frame) }},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if got := testing.AllocsPerRun(200, tc.fn); got > tc.want {
				t.Fatalf("%s: %.1f allocs/op, want ≤ %.0f", tc.name, got, tc.want)
			}
		})
	}
}

func BenchmarkEncodeMessage(b *testing.B) {
	payload := make([]byte, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		encodeRepresentative("n1", payload)
	}
}

func BenchmarkPackEnvelope(b *testing.B) {
	payload := make([]byte, 512)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		PackEnvelope("accounts/alice", payload)
	}
}

func BenchmarkUnpackEnvelope(b *testing.B) {
	frame := PackEnvelope("accounts/alice", make([]byte, 512))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := UnpackEnvelope(frame); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStateFrameAppend(b *testing.B) {
	payload := make([]byte, 512)
	var digest, baseline [DigestSize]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		w := MakeWriter(make([]byte, 0, 1+2*DigestSize+8+len(payload)))
		StateFrame{Kind: StateDelta, State: payload, Digest: digest, Baseline: baseline}.Append(&w)
	}
}
