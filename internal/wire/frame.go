package wire

// The client frame format is the second wire layer of the repository: the
// request/response protocol spoken between the public crdtsmr/client
// package and
// internal/server, layered over length-prefixed TCP framing like the
// replica transport but with its own header so the two can evolve
// independently. docs/PROTOCOL.md is the normative byte-level spec;
// this file is its reference implementation.
//
// Every frame starts [version u8][op u8][request id uvarint]. Responses
// echo the request's op with RespBit set and its request ID, so clients
// can pipeline many requests over one connection and match replies out of
// order. Trailing bytes after a known body are ignored (forward
// compatibility: future versions may append fields); every other decoding
// irregularity is an error — decoders never panic on malformed input.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// FrameVersion is the client protocol version this build speaks. A peer
// receiving a frame of a different version drops the connection — the
// rest of the header cannot be trusted (docs/PROTOCOL.md §2.7).
const FrameVersion = 1

// MaxFrame bounds one client frame (header + body) in bytes, protecting
// both sides against corrupt or hostile length prefixes.
const MaxFrame = 4 << 20

// MaxArgs bounds the operand count of an update request; encoders must
// enforce it (the decoder rejects it, and the server answers an
// undecodable frame by dropping the connection).
const MaxArgs = 64

// Client frame ops. A response's op is the request's op with RespBit set.
const (
	// OpUpdate applies a named mutation to one object (at-least-once on
	// client retry; see docs/PROTOCOL.md §Retries).
	OpUpdate byte = 0x01
	// OpQuery learns a linearizable state of one object.
	OpQuery byte = 0x02
	// OpAdmin carries a cluster-management command ("ping", "keys").
	OpAdmin byte = 0x03
	// RespBit marks response frames.
	RespBit byte = 0x80
)

// Mutation names accepted in update requests, per CRDT type (the server's
// ops table is the authority; docs/PROTOCOL.md lists operands):
//
//	g-counter:    inc(n)
//	pn-counter:   inc(n), dec(n)
//	or-set:       add(element), remove(element)
//	lww-register: set(value)
const (
	MutInc    = "inc"
	MutDec    = "dec"
	MutAdd    = "add"
	MutRemove = "remove"
	MutSet    = "set"
)

// Response status codes.
const (
	// StatusOK: the operation completed.
	StatusOK byte = 0
	// StatusUnavailable: the replica refused the operation before running
	// the protocol (crashed or shutting down). The operation was NOT
	// applied; retrying it on another replica is always safe.
	StatusUnavailable byte = 1
	// StatusUncertain: the operation was accepted but its fate is unknown
	// (e.g. it timed out mid-protocol). An update may or may not have been
	// applied; only queries are safe to retry automatically.
	StatusUncertain byte = 2
	// StatusBadRequest: the frame was malformed, of an unknown version, or
	// named an unknown op/mutation. Retrying the same frame cannot succeed.
	StatusBadRequest byte = 3
	// StatusError: the operation ran and failed terminally (e.g. mutation
	// applied to an object of a different CRDT type).
	StatusError byte = 4
	// StatusBusy: the server shed the operation (or, with request ID 0,
	// the whole connection) at admission, before any of it executed —
	// its connection or in-flight limit is exceeded. The operation was
	// NOT applied; retrying anywhere is safe, but the client must back
	// off first (docs/PROTOCOL.md §2.5).
	StatusBusy byte = 5
)

// ErrFrameTooLarge is returned for frames exceeding MaxFrame.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ErrVersion is returned for frames of an unknown protocol version.
var ErrVersion = errors.New("wire: unsupported frame version")

// Request is one decoded client request frame.
type Request struct {
	Op  byte
	ID  uint64
	Key string // object key (update, query)

	// Update fields: the registered CRDT type the client believes the
	// object holds, the mutation name, and its operands.
	CRDTType string
	Mutation string
	Args     [][]byte

	// Admin field.
	Cmd string
}

// Encode renders the request as a frame body (without the outer length
// prefix; see WriteFrame).
func (r *Request) Encode() []byte {
	w := NewWriter(64)
	w.Byte(FrameVersion)
	w.Byte(r.Op)
	w.Uvarint(r.ID)
	switch r.Op {
	case OpUpdate:
		w.Str(r.Key)
		w.Str(r.CRDTType)
		w.Str(r.Mutation)
		w.Uvarint(uint64(len(r.Args)))
		for _, a := range r.Args {
			w.Raw(a)
		}
	case OpQuery:
		w.Str(r.Key)
	case OpAdmin:
		w.Str(r.Cmd)
	}
	return w.Bytes()
}

// DecodeRequest parses a request frame body. It returns an error — never
// panics — on truncated, oversized, or otherwise malformed input.
func DecodeRequest(frame []byte) (*Request, error) {
	if len(frame) > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	r := NewReader(frame)
	if v := r.Byte(); r.Err() == nil && v != FrameVersion {
		return nil, fmt.Errorf("%w: %d", ErrVersion, v)
	}
	req := &Request{Op: r.Byte(), ID: r.Uvarint()}
	switch req.Op {
	case OpUpdate:
		req.Key = r.Str()
		req.CRDTType = r.Str()
		req.Mutation = r.Str()
		n := r.Uvarint()
		if r.Err() == nil && n > MaxArgs {
			return nil, fmt.Errorf("wire: %d update args exceeds limit %d", n, MaxArgs)
		}
		for i := uint64(0); i < n && r.Err() == nil; i++ {
			req.Args = append(req.Args, r.Raw())
		}
	case OpQuery:
		req.Key = r.Str()
	case OpAdmin:
		req.Cmd = r.Str()
	default:
		if r.Err() == nil {
			return nil, fmt.Errorf("wire: unknown request op 0x%02x", req.Op)
		}
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Trailing bytes are tolerated: future minor revisions may append
	// fields to a body without breaking older decoders.
	return req, nil
}

// Response is one decoded client response frame.
type Response struct {
	Op     byte // request op with RespBit set
	ID     uint64
	Status byte

	// StatusOK bodies.
	RoundTrips uint64
	Attempts   uint64 // query only
	Path       byte   // query only: core.LearnPath
	State      []byte // query only: crdt.Marshal encoding
	Payload    []byte // admin only

	// Non-OK bodies.
	Msg string
}

// Encode renders the response as a frame body.
func (r *Response) Encode() []byte {
	w := NewWriter(32 + len(r.State) + len(r.Payload))
	w.Byte(FrameVersion)
	w.Byte(r.Op)
	w.Uvarint(r.ID)
	w.Byte(r.Status)
	if r.Status != StatusOK {
		w.Str(r.Msg)
		return w.Bytes()
	}
	switch r.Op &^ RespBit {
	case OpUpdate:
		w.Uvarint(r.RoundTrips)
	case OpQuery:
		w.Uvarint(r.RoundTrips)
		w.Uvarint(r.Attempts)
		w.Byte(r.Path)
		w.Raw(r.State)
	case OpAdmin:
		w.Raw(r.Payload)
	}
	return w.Bytes()
}

// DecodeResponse parses a response frame body. Like DecodeRequest it
// errors, never panics, on malformed input.
func DecodeResponse(frame []byte) (*Response, error) {
	if len(frame) > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	r := NewReader(frame)
	if v := r.Byte(); r.Err() == nil && v != FrameVersion {
		return nil, fmt.Errorf("%w: %d", ErrVersion, v)
	}
	resp := &Response{Op: r.Byte(), ID: r.Uvarint(), Status: r.Byte()}
	if r.Err() == nil && resp.Op&RespBit == 0 {
		return nil, fmt.Errorf("wire: response op 0x%02x lacks response bit", resp.Op)
	}
	switch resp.Op &^ RespBit {
	case OpUpdate, OpQuery, OpAdmin:
	default:
		if r.Err() == nil {
			return nil, fmt.Errorf("wire: unknown response op 0x%02x", resp.Op)
		}
	}
	if resp.Status != StatusOK {
		resp.Msg = r.Str()
		if err := r.Err(); err != nil {
			return nil, err
		}
		return resp, nil
	}
	switch resp.Op &^ RespBit {
	case OpUpdate:
		resp.RoundTrips = r.Uvarint()
	case OpQuery:
		resp.RoundTrips = r.Uvarint()
		resp.Attempts = r.Uvarint()
		resp.Path = r.Byte()
		resp.State = r.Raw()
	case OpAdmin:
		resp.Payload = r.Raw()
	}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return resp, nil
}

// WriteFrame writes one length-prefixed frame: [uvarint len][frame].
func WriteFrame(w io.Writer, frame []byte) error {
	if len(frame) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(hdr[:], uint64(len(frame)))
	if _, err := w.Write(hdr[:n]); err != nil {
		return err
	}
	_, err := w.Write(frame)
	return err
}

// ReadFrame reads one length-prefixed frame, enforcing MaxFrame before
// allocating.
func ReadFrame(br *bufio.Reader) ([]byte, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, err
	}
	if n > MaxFrame {
		return nil, ErrFrameTooLarge
	}
	frame := make([]byte, n)
	if _, err := io.ReadFull(br, frame); err != nil {
		return nil, err
	}
	return frame, nil
}
