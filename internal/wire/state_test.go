package wire

import (
	"bytes"
	"testing"
)

func digest(b byte) (d [DigestSize]byte) {
	for i := range d {
		d[i] = b
	}
	return d
}

func stateFrameCases() []StateFrame {
	return []StateFrame{
		{Kind: StateNone},
		{Kind: StateFull, State: []byte("payload")},
		{Kind: StateFull, State: []byte{}},
		{Kind: StateDigest, Digest: digest(0xAA)},
		{Kind: StateDelta, Baseline: digest(0x01), Digest: digest(0x02), State: []byte("delta")},
		{Kind: StateFullDigest, State: []byte("seeded"), Digest: digest(0x7F)},
	}
}

func TestStateFrameRoundTrip(t *testing.T) {
	for _, f := range stateFrameCases() {
		w := NewWriter(64)
		f.Append(w)
		r := NewReader(w.Bytes())
		got := ReadStateFrame(r)
		if err := r.Done(); err != nil {
			t.Fatalf("%v: decode: %v", f.Kind, err)
		}
		if got.Kind != f.Kind || got.Digest != f.Digest || got.Baseline != f.Baseline {
			t.Fatalf("round trip changed frame: %+v vs %+v", f, got)
		}
		if !bytes.Equal(got.State, f.State) {
			t.Fatalf("%v: state %q vs %q", f.Kind, f.State, got.State)
		}
	}
}

// TestStateFrameLegacyCompat pins the wire compatibility claim: kinds 0
// and 1 must encode exactly like the pre-extension hasState:bool layout.
func TestStateFrameLegacyCompat(t *testing.T) {
	w := NewWriter(8)
	StateFrame{Kind: StateNone}.Append(w)
	if !bytes.Equal(w.Bytes(), []byte{0}) {
		t.Fatalf("none = %x, want 00", w.Bytes())
	}
	w = NewWriter(8)
	StateFrame{Kind: StateFull, State: []byte("ab")}.Append(w)
	legacy := NewWriter(8)
	legacy.Bool(true)
	legacy.Raw([]byte("ab"))
	if !bytes.Equal(w.Bytes(), legacy.Bytes()) {
		t.Fatalf("full = %x, want legacy %x", w.Bytes(), legacy.Bytes())
	}
}

func TestStateFrameRejectsUnknownKindAndTruncation(t *testing.T) {
	r := NewReader([]byte{9, 1, 2, 3})
	ReadStateFrame(r)
	if r.Err() == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, f := range stateFrameCases() {
		w := NewWriter(64)
		f.Append(w)
		raw := w.Bytes()
		for cut := 0; cut < len(raw); cut++ {
			r := NewReader(raw[:cut])
			ReadStateFrame(r)
			if err := r.Done(); err == nil && cut != len(raw) {
				t.Fatalf("%v: truncation at %d/%d accepted", f.Kind, cut, len(raw))
			}
		}
	}
}

func TestStateKindPredicates(t *testing.T) {
	wantPayload := map[StateKind]bool{StateFull: true, StateDelta: true, StateFullDigest: true}
	wantDigest := map[StateKind]bool{StateDigest: true, StateDelta: true, StateFullDigest: true}
	for k := StateNone; k <= StateFullDigest; k++ {
		if k.HasPayload() != wantPayload[k] {
			t.Errorf("%v.HasPayload() = %t", k, k.HasPayload())
		}
		if k.HasDigest() != wantDigest[k] {
			t.Errorf("%v.HasDigest() = %t", k, k.HasDigest())
		}
	}
}

// FuzzDecodeStateFrame asserts the state-frame decoder never panics on
// arbitrary bytes and that everything it accepts survives an encode →
// decode round trip unchanged. (Byte identity is not required: varint
// length prefixes admit non-canonical encodings.)
func FuzzDecodeStateFrame(f *testing.F) {
	for _, fr := range stateFrameCases() {
		w := NewWriter(64)
		fr.Append(w)
		f.Add(w.Bytes())
		if len(w.Bytes()) > 2 {
			f.Add(w.Bytes()[:len(w.Bytes())/2])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{2})
	f.Add([]byte{3, 0xFF})
	f.Add([]byte{9, 9, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		fr := ReadStateFrame(r)
		if err := r.Done(); err != nil {
			return // malformed input must be rejected, not crash
		}
		w := NewWriter(len(data))
		fr.Append(w)
		r2 := NewReader(w.Bytes())
		again := ReadStateFrame(r2)
		if err := r2.Done(); err != nil {
			t.Fatalf("accepted frame re-encodes undecodably: %v", err)
		}
		if again.Kind != fr.Kind || again.Digest != fr.Digest || again.Baseline != fr.Baseline || !bytes.Equal(again.State, fr.State) {
			t.Fatalf("encode/decode not idempotent:\n first  %+v\n second %+v", fr, again)
		}
	})
}

// FuzzUnpackEnvelope asserts the object-envelope decoder never panics and
// that accepted envelopes round-trip through PackEnvelope.
func FuzzUnpackEnvelope(f *testing.F) {
	f.Add(PackEnvelope("", []byte{}))
	f.Add(PackEnvelope("obj/0001", []byte("payload")))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		id, payload, err := UnpackEnvelope(data)
		if err != nil {
			return
		}
		id2, payload2, err := UnpackEnvelope(PackEnvelope(id, payload))
		if err != nil {
			t.Fatalf("accepted envelope re-packs unreadably: %v", err)
		}
		if id2 != id || !bytes.Equal(payload2, payload) {
			t.Fatalf("envelope round trip changed content: id %q vs %q", id, id2)
		}
	})
}
