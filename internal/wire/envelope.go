package wire

// The object envelope multiplexes many independent replication instances
// over one transport connection: every protocol message is prefixed with
// the ID of the object (the store key) it belongs to, so a node can route
// inbound messages to the right per-key replica. The inner payload stays
// opaque to the envelope — the same framing serves every protocol in the
// repository.
//
// Layout: [objectID str][payload...] — the payload is the unprefixed tail
// of the frame, so unpacking returns a subslice of the input with no copy.
// Both Mesh and TCP allocate a fresh frame per delivery, so borrowing the
// tail is safe; callers treating payloads as immutable (as all decoders in
// this repository do) see no aliasing.

// PackEnvelope prefixes a protocol message with its object ID. It costs
// exactly one allocation — the returned frame.
func PackEnvelope(objectID string, payload []byte) []byte {
	w := MakeWriter(make([]byte, 0, len(objectID)+len(payload)+4))
	w.Str(objectID)
	w.Fixed(payload)
	return w.Bytes()
}

// UnpackEnvelope splits a frame produced by PackEnvelope into the object ID
// and the inner protocol message. The payload aliases frame's tail.
func UnpackEnvelope(frame []byte) (objectID string, payload []byte, err error) {
	r := NewReader(frame)
	objectID = r.Str()
	if err := r.Err(); err != nil {
		return "", nil, err
	}
	return objectID, r.Rest(), nil
}
