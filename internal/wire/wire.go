package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ErrTruncated is reported when a reader runs out of input mid-field.
var ErrTruncated = errors.New("wire: truncated message")

// Writer incrementally builds a wire-encoded message.
type Writer struct {
	b []byte
}

// NewWriter returns a writer with the given capacity hint.
func NewWriter(sizeHint int) *Writer {
	return &Writer{b: make([]byte, 0, sizeHint)}
}

// MakeWriter returns a by-value writer appending to buf (normally an
// empty slice with the desired capacity). It performs no allocation of
// its own, so hot encode paths that can size their output precisely pay
// exactly one allocation — the buffer they pass in.
func MakeWriter(buf []byte) Writer { return Writer{b: buf} }

// Bytes returns the encoded message. The writer must not be reused after.
func (w *Writer) Bytes() []byte { return w.b }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.b) }

// Byte appends a single byte (used for message type tags).
func (w *Writer) Byte(v byte) { w.b = append(w.b, v) }

// Bool appends a boolean as one byte.
func (w *Writer) Bool(v bool) {
	if v {
		w.b = append(w.b, 1)
	} else {
		w.b = append(w.b, 0)
	}
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) { w.b = binary.AppendUvarint(w.b, v) }

// Varint appends a signed varint.
func (w *Writer) Varint(v int64) { w.b = binary.AppendVarint(w.b, v) }

// Str appends a length-prefixed string.
func (w *Writer) Str(s string) {
	w.Uvarint(uint64(len(s)))
	w.b = append(w.b, s...)
}

// Raw appends a length-prefixed byte slice.
func (w *Writer) Raw(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.b = append(w.b, p...)
}

// Fixed appends p without a length prefix, for fields of statically known
// width (e.g. state digests).
func (w *Writer) Fixed(p []byte) { w.b = append(w.b, p...) }

// Reader decodes a wire-encoded message produced by Writer.
type Reader struct {
	b   []byte
	err error
}

// NewReader returns a reader over p. The reader borrows p; callers must not
// mutate it while decoding.
func NewReader(p []byte) *Reader { return &Reader{b: p} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Done returns an error if decoding failed or input remains.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.b) != 0 {
		return fmt.Errorf("wire: %d trailing bytes", len(r.b))
	}
	return nil
}

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrTruncated
	}
}

// failf records a formatted decode error (first error wins).
func (r *Reader) failf(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf(format, args...)
	}
}

// Byte reads a single byte.
func (r *Reader) Byte() byte {
	if r.err != nil || len(r.b) < 1 {
		r.fail()
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

// Bool reads a boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.fail()
		return 0
	}
	r.b = r.b[n:]
	return v
}

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.Uvarint()
	if r.err != nil || uint64(len(r.b)) < n {
		r.fail()
		return ""
	}
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s
}

// Rest consumes and returns the unread remainder of the input. The slice
// aliases the reader's underlying buffer; it is used for trailing payload
// fields that need no length prefix.
func (r *Reader) Rest() []byte {
	if r.err != nil {
		return nil
	}
	p := r.b
	r.b = nil
	return p
}

// Fixed reads len(dst) bytes into dst (no length prefix).
func (r *Reader) Fixed(dst []byte) {
	if r.err != nil || len(r.b) < len(dst) {
		r.fail()
		return
	}
	copy(dst, r.b[:len(dst)])
	r.b = r.b[len(dst):]
}

// Raw reads a length-prefixed byte slice. The returned slice is a copy.
func (r *Reader) Raw() []byte {
	n := r.Uvarint()
	if r.err != nil || uint64(len(r.b)) < n {
		r.fail()
		return nil
	}
	p := make([]byte, n)
	copy(p, r.b[:n])
	r.b = r.b[n:]
	return p
}
