package wire

import (
	"bytes"
	"testing"
)

func TestEnvelopeRoundTrip(t *testing.T) {
	cases := []struct {
		id      string
		payload []byte
	}{
		{"", nil},
		{"", []byte{1, 2, 3}},
		{"user/42", []byte("payload")},
		{"k", bytes.Repeat([]byte{0xab}, 1<<16)},
		{"unicode/ключ/鍵", []byte{0}},
	}
	for _, c := range cases {
		frame := PackEnvelope(c.id, c.payload)
		id, payload, err := UnpackEnvelope(frame)
		if err != nil {
			t.Fatalf("unpack(%q): %v", c.id, err)
		}
		if id != c.id {
			t.Fatalf("object ID %q, want %q", id, c.id)
		}
		if !bytes.Equal(payload, c.payload) {
			t.Fatalf("payload mismatch for %q: %d bytes, want %d", c.id, len(payload), len(c.payload))
		}
	}
}

func TestEnvelopeRejectsMalformed(t *testing.T) {
	cases := [][]byte{
		{},        // missing object ID
		{0xff},    // truncated ID length varint
		{3, 'a'},  // ID shorter than its length
		{9, 1, 2}, // ID length beyond the frame
	}
	for i, frame := range cases {
		if _, _, err := UnpackEnvelope(frame); err == nil {
			t.Fatalf("case %d: malformed frame accepted", i)
		}
	}
}

func TestEnvelopePayloadAliasesTail(t *testing.T) {
	frame := PackEnvelope("k", []byte{1, 2, 3})
	_, payload, err := UnpackEnvelope(frame)
	if err != nil {
		t.Fatal(err)
	}
	// The payload is the frame's tail, not a copy — the hot receive path
	// must not re-copy every protocol message.
	if &payload[0] != &frame[len(frame)-len(payload)] {
		t.Fatal("payload does not alias the frame tail")
	}
}

func TestEnvelopeDistinctKeysDistinctFrames(t *testing.T) {
	a := PackEnvelope("a", []byte("x"))
	b := PackEnvelope("b", []byte("x"))
	if bytes.Equal(a, b) {
		t.Fatal("different object IDs encoded identically")
	}
}
