// Package wire provides the low-level deterministic binary codec shared by
// every protocol message format in this repository (CRDT Paxos, Raft,
// Multi-Paxos, GLA) and by the TCP framing layer, plus the message
// formats built directly on it: the object envelope that multiplexes
// per-key replication instances over one replica connection
// (envelope.go), the state-transfer frames that let replica messages
// carry payloads by value, digest, or delta (state.go, spec in
// docs/PROTOCOL.md §3), and the client frame protocol spoken between
// crdtsmr/client and internal/server (frame.go). docs/PROTOCOL.md is
// the byte-level specification of all three.
//
// The codec is a thin layer over encoding/binary varints with
// length-prefixed strings and byte slices. Writers never fail; Readers
// accumulate the first error and report it from Err, so decoders can be
// written as straight-line field reads followed by a single error check.
package wire
