package wire

import "fmt"

// State-transfer frames are the versioned extension of the replica
// protocol that lets a message describe its payload state by value, by
// digest, or by delta (docs/PROTOCOL.md §3). Every protocol message ends
// with one state frame:
//
//	stateFrame := kind:u8 body
//
// where body depends on the kind. Kinds 0 and 1 are byte-for-byte the
// legacy hasState:bool encoding, so pre-extension frames decode unchanged;
// kinds 2-4 are additive. An unknown kind is a decode error — the receiver
// drops the message, which the protocols tolerate as loss — so new kinds
// can only be introduced together with a cluster-wide rollout (the
// version-bump rules of PROTOCOL.md §3.4).

// DigestSize is the byte length of a state digest on the wire (SHA-256).
const DigestSize = 32

// StateKind tags how a state frame carries its payload.
type StateKind uint8

const (
	// StateNone: no payload and no digest (legacy hasState=0).
	StateNone StateKind = 0
	// StateFull: the complete marshaled payload (legacy hasState=1).
	StateFull StateKind = 1
	// StateDigest: only the digest of the sender's state; the receiver is
	// expected to recognize it.
	StateDigest StateKind = 2
	// StateDelta: a delta payload plus the digest of the baseline it was
	// computed against and the digest of the resulting full state.
	StateDelta StateKind = 3
	// StateFullDigest: the complete payload plus the sender's state
	// digest (a seeded PREPARE announcing its digest).
	StateFullDigest StateKind = 4
)

func (k StateKind) String() string {
	switch k {
	case StateNone:
		return "none"
	case StateFull:
		return "full"
	case StateDigest:
		return "digest"
	case StateDelta:
		return "delta"
	case StateFullDigest:
		return "full+digest"
	default:
		return fmt.Sprintf("StateKind(%d)", uint8(k))
	}
}

// HasPayload reports whether the kind carries a marshaled state.
func (k StateKind) HasPayload() bool {
	return k == StateFull || k == StateDelta || k == StateFullDigest
}

// HasDigest reports whether the kind carries the sender's state digest.
func (k StateKind) HasDigest() bool {
	return k == StateDigest || k == StateDelta || k == StateFullDigest
}

// StateFrame is one decoded state-transfer frame.
type StateFrame struct {
	Kind StateKind
	// State is the marshaled payload: the full state for StateFull and
	// StateFullDigest, the delta for StateDelta, nil otherwise.
	State []byte
	// Digest is the digest of the sender's full state (StateDigest,
	// StateFullDigest) or of the state resulting from applying the delta
	// (StateDelta).
	Digest [DigestSize]byte
	// Baseline is the digest of the state the delta was computed against
	// (StateDelta only).
	Baseline [DigestSize]byte
}

// Append encodes the frame onto w. Layout per kind:
//
//	none        : 00
//	full        : 01 state:raw
//	digest      : 02 digest:32
//	delta       : 03 baseline:32 digest:32 state:raw
//	full+digest : 04 state:raw digest:32
func (f StateFrame) Append(w *Writer) {
	w.Byte(byte(f.Kind))
	switch f.Kind {
	case StateFull:
		w.Raw(f.State)
	case StateDigest:
		w.Fixed(f.Digest[:])
	case StateDelta:
		w.Fixed(f.Baseline[:])
		w.Fixed(f.Digest[:])
		w.Raw(f.State)
	case StateFullDigest:
		w.Raw(f.State)
		w.Fixed(f.Digest[:])
	}
}

// ReadStateFrame decodes one state frame from r. Errors (truncation,
// unknown kind) surface through r.Err.
func ReadStateFrame(r *Reader) StateFrame {
	f := StateFrame{Kind: StateKind(r.Byte())}
	switch f.Kind {
	case StateNone:
	case StateFull:
		f.State = r.Raw()
	case StateDigest:
		r.Fixed(f.Digest[:])
	case StateDelta:
		r.Fixed(f.Baseline[:])
		r.Fixed(f.Digest[:])
		f.State = r.Raw()
	case StateFullDigest:
		f.State = r.Raw()
		r.Fixed(f.Digest[:])
	default:
		r.failf("wire: unknown state frame kind %d", uint8(f.Kind))
	}
	return f
}
