package raft_test

// Property tests driving the Raft RSM through the latency-emulated
// transport.Fabric via the shootout harness: seeded loss, duplication, and
// partitions must leave every client-visible history linearizable, and the
// same seed must reproduce the same decided command sequence.

import (
	"reflect"
	"testing"

	"crdtsmr/internal/checker"
	"crdtsmr/internal/shootout"
)

func raftSpec(t *testing.T) shootout.Spec {
	t.Helper()
	sp, err := shootout.SpecNamed("raft")
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestRaftLinearizableUnderLossAndDuplication fuzzes loss+duplication
// schedules by seed. Duplication is the interesting axis: a duplicated
// client forward must not commit a command twice (leader-side dedup).
func TestRaftLinearizableUnderLossAndDuplication(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		net := shootout.LAN()
		net.Loss, net.Dup = 0.15, 0.15
		res, err := shootout.Conform(raftSpec(t), shootout.ConformConfig{
			Seed: seed, Replicas: 3, Ops: 60, Net: net,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := checker.CheckCounterLinearizable(res.Ops); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Incs == 0 || res.Reads == 0 {
			t.Fatalf("seed %d: degenerate run %+v", seed, res)
		}
	}
}

// TestRaftLinearizableUnderPartitions adds minority partitions: leader
// failovers must not lose or double-apply committed commands.
func TestRaftLinearizableUnderPartitions(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, seed := range []int64{10, 11, 12} {
		net := shootout.LAN()
		net.Loss = 0.05
		res, err := shootout.Conform(raftSpec(t), shootout.ConformConfig{
			Seed: seed, Replicas: 3, Ops: 80, Net: net, Partitions: 2,
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := checker.CheckCounterLinearizable(res.Ops); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestRaftSameSeedSameDecisions pins determinism and agreement: two runs
// from the same seed decide byte-identical command sequences, and within a
// run every pair of replica logs is prefix-consistent (no divergence).
func TestRaftSameSeedSameDecisions(t *testing.T) {
	run := func() *shootout.ConformResult {
		net := shootout.LAN()
		net.Loss, net.Dup = 0.1, 0.1
		res, err := shootout.Conform(raftSpec(t), shootout.ConformConfig{
			Seed: 42, Replicas: 3, Ops: 50, Net: net,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.AppliedLogs, b.AppliedLogs) {
		t.Fatalf("same seed decided different logs:\n%v\n%v", a.AppliedLogs, b.AppliedLogs)
	}
	if !reflect.DeepEqual(a.FinalReads, b.FinalReads) {
		t.Fatalf("same seed, different final reads: %v vs %v", a.FinalReads, b.FinalReads)
	}
	for i := 0; i < len(a.AppliedLogs); i++ {
		for j := i + 1; j < len(a.AppliedLogs); j++ {
			li, lj := a.AppliedLogs[i], a.AppliedLogs[j]
			n := len(li)
			if len(lj) < n {
				n = len(lj)
			}
			for k := 0; k < n; k++ {
				if li[k] != lj[k] {
					t.Fatalf("replicas %d and %d diverge at applied index %d: %q vs %q",
						i, j, k, li[k], lj[k])
				}
			}
		}
	}
}
