package raft

import (
	"errors"
	"fmt"

	"crdtsmr/internal/rsm"
	"crdtsmr/internal/transport"
)

// ErrNoLeader is reported when a command cannot be routed to a leader.
var ErrNoLeader = errors.New("raft: no known leader")

// ErrLostLeadership is reported when a proposed entry was overwritten by a
// competing leader before committing.
var ErrLostLeadership = errors.New("raft: leadership lost before commit")

type role uint8

const (
	follower role = iota + 1
	candidate
	leader
)

// Done receives a committed command's result.
type Done func(result []byte, err error)

// Replica is the pure Raft state machine. All methods must be called from
// one goroutine; outbound messages accumulate in the outbox.
type Replica struct {
	id     transport.NodeID
	peers  []transport.NodeID
	quorum int
	sm     rsm.StateMachine

	term     uint64
	votedFor transport.NodeID
	role     role
	leader   transport.NodeID // best-known leader ("" if unknown)

	// Log with snapshot-based compaction: log[i] holds the entry at index
	// snapIndex+1+i. Index 0 is the birth of the log.
	log       []Entry
	snapIndex uint64
	snapTerm  uint64
	snapshot  []byte

	commitIndex uint64
	lastApplied uint64

	// Candidate state.
	votes map[transport.NodeID]bool

	// Leader state. inflight gates replication per follower so each gets
	// at most one append/snapshot per round trip (self-clocking pipeline);
	// HeartbeatTick re-opens the gate, covering lost responses.
	nextIndex  map[transport.NodeID]uint64
	matchIndex map[transport.NodeID]uint64
	inflight   map[transport.NodeID]bool

	// Client plumbing.
	proposals     map[uint64]*proposal // by log index (leader side)
	forwards      map[uint64]Done      // by forward request ID (origin side)
	nextForwardID uint64

	// Forward dedup (receiver side): request IDs already seen per origin.
	// The network may duplicate a forwarded command; without this a leader
	// would append — and commit — the same non-idempotent command twice.
	forwardSeen map[transport.NodeID]map[uint64]struct{}
	forwardMax  map[transport.NodeID]uint64

	// CompactEvery triggers a snapshot after this many applied entries
	// beyond the last snapshot (0 disables compaction).
	CompactEvery int

	outbox []Envelope
}

type proposal struct {
	term uint64
	done Done
}

// NewReplica creates a Raft participant. members must include id.
func NewReplica(id transport.NodeID, members []transport.NodeID, sm rsm.StateMachine) (*Replica, error) {
	peers := make([]transport.NodeID, 0, len(members)-1)
	self := false
	for _, m := range members {
		if m == id {
			self = true
			continue
		}
		peers = append(peers, m)
	}
	if !self {
		return nil, fmt.Errorf("raft: %s not in member list %v", id, members)
	}
	return &Replica{
		id:           id,
		peers:        peers,
		quorum:       len(members)/2 + 1,
		sm:           sm,
		role:         follower,
		proposals:    make(map[uint64]*proposal),
		forwards:     make(map[uint64]Done),
		forwardSeen:  make(map[transport.NodeID]map[uint64]struct{}),
		forwardMax:   make(map[transport.NodeID]uint64),
		CompactEvery: 4096,
	}, nil
}

// ID returns the replica ID.
func (r *Replica) ID() transport.NodeID { return r.id }

// IsLeader reports whether this replica currently believes it leads.
func (r *Replica) IsLeader() bool { return r.role == leader }

// Leader returns the best-known leader, or "".
func (r *Replica) Leader() transport.NodeID {
	if r.role == leader {
		return r.id
	}
	return r.leader
}

// Term returns the current term (for tests and metrics).
func (r *Replica) Term() uint64 { return r.term }

// LogLen returns the number of live (uncompacted) log entries.
func (r *Replica) LogLen() int { return len(r.log) }

// TakeOutbox returns and clears pending outbound messages.
func (r *Replica) TakeOutbox() []Envelope {
	out := r.outbox
	r.outbox = nil
	return out
}

func (r *Replica) send(to transport.NodeID, m *message) {
	r.outbox = append(r.outbox, Envelope{To: to, Payload: m.encode()})
}

func (r *Replica) lastIndex() uint64 { return r.snapIndex + uint64(len(r.log)) }

func (r *Replica) termAt(idx uint64) uint64 {
	switch {
	case idx == r.snapIndex:
		return r.snapTerm
	case idx > r.snapIndex && idx <= r.lastIndex():
		return r.log[idx-r.snapIndex-1].Term
	default:
		return 0
	}
}

func (r *Replica) entriesFrom(idx uint64) []Entry {
	if idx > r.lastIndex() {
		return nil
	}
	src := r.log[idx-r.snapIndex-1:]
	out := make([]Entry, len(src))
	copy(out, src)
	return out
}

// --- timers (driven by the runtime) ---

// ElectionTimeout starts an election (follower/candidate) or is ignored by
// a leader.
func (r *Replica) ElectionTimeout() {
	if r.role == leader {
		return
	}
	r.term++
	r.role = candidate
	r.votedFor = r.id
	r.leader = ""
	r.votes = map[transport.NodeID]bool{r.id: true}
	m := &message{
		Type:      mRequestVote,
		Term:      r.term,
		LastIndex: r.lastIndex(),
		LastTerm:  r.termAt(r.lastIndex()),
	}
	for _, p := range r.peers {
		r.send(p, m)
	}
	r.maybeWinElection()
}

// HeartbeatTick makes a leader replicate/heartbeat to every follower.
func (r *Replica) HeartbeatTick() {
	if r.role != leader {
		return
	}
	for _, p := range r.peers {
		r.inflight[p] = false // retransmit window: response lost or slow
		r.replicateTo(p)
	}
}

func (r *Replica) replicateTo(p transport.NodeID) {
	if r.inflight[p] {
		return
	}
	r.inflight[p] = true
	next := r.nextIndex[p]
	if next <= r.snapIndex {
		// The follower is behind the snapshot horizon.
		r.send(p, &message{
			Type:      mSnapshot,
			Term:      r.term,
			LastIndex: r.snapIndex,
			LastTerm:  r.snapTerm,
			Data:      r.snapshot,
		})
		return
	}
	prev := next - 1
	r.send(p, &message{
		Type:      mAppend,
		Term:      r.term,
		PrevIndex: prev,
		PrevTerm:  r.termAt(prev),
		Entries:   r.entriesFrom(next),
		Commit:    r.commitIndex,
	})
}

// --- client commands ---

// Propose submits a command. On the leader it is appended directly; on a
// follower it is forwarded to the known leader; with no known leader the
// callback fires immediately with ErrNoLeader so the caller can retry.
// done fires exactly once.
func (r *Replica) Propose(cmd []byte, done Done) {
	switch {
	case r.role == leader:
		r.appendLocal(cmd, done)
	case r.leader != "":
		r.nextForwardID++
		fid := r.nextForwardID
		r.forwards[fid] = done
		r.send(r.leader, &message{Type: mForward, ReqID: fid, Cmd: cmd})
	default:
		done(nil, ErrNoLeader)
	}
}

// FailForwards aborts forwarded commands still waiting for a leader reply;
// the runtime calls this on retry timeouts.
func (r *Replica) FailForwards() {
	for id, done := range r.forwards {
		delete(r.forwards, id)
		done(nil, ErrNoLeader)
	}
}

// PendingForwards returns the number of forwarded commands awaiting replies.
func (r *Replica) PendingForwards() int { return len(r.forwards) }

func (r *Replica) appendLocal(cmd []byte, done Done) {
	r.log = append(r.log, Entry{Term: r.term, Cmd: cmd})
	idx := r.lastIndex()
	if done != nil {
		r.proposals[idx] = &proposal{term: r.term, done: done}
	}
	r.matchIndex[r.id] = idx
	if r.quorum == 1 {
		r.advanceCommit()
	}
	for _, p := range r.peers {
		r.replicateTo(p)
	}
}

// --- message handling ---

// Deliver processes one inbound message. It returns true if the message
// was a valid heartbeat/append/vote-grant that should reset the caller's
// election timer.
func (r *Replica) Deliver(from transport.NodeID, payload []byte) bool {
	m, err := decodeMessage(payload)
	if err != nil {
		return false
	}
	if m.Term > r.term {
		r.becomeFollower(m.Term, "")
	}
	switch m.Type {
	case mRequestVote:
		return r.onRequestVote(from, m)
	case mVote:
		r.onVote(from, m)
	case mAppend:
		return r.onAppend(from, m)
	case mAppendResp:
		r.onAppendResp(from, m)
	case mSnapshot:
		return r.onSnapshot(from, m)
	case mSnapshotResp:
		r.onSnapshotResp(from, m)
	case mForward:
		r.onForward(from, m)
	case mForwardResp:
		r.onForwardResp(m)
	}
	return false
}

func (r *Replica) becomeFollower(term uint64, leaderID transport.NodeID) {
	wasLeader := r.role == leader
	r.term = term
	r.role = follower
	r.votedFor = ""
	r.leader = leaderID
	r.votes = nil
	if wasLeader {
		r.failProposals()
	}
}

func (r *Replica) failProposals() {
	for idx, p := range r.proposals {
		delete(r.proposals, idx)
		p.done(nil, ErrLostLeadership)
	}
}

func (r *Replica) onRequestVote(from transport.NodeID, m *message) bool {
	grant := false
	if m.Term >= r.term && (r.votedFor == "" || r.votedFor == from) && r.role != leader {
		myLast := r.lastIndex()
		myTerm := r.termAt(myLast)
		upToDate := m.LastTerm > myTerm || (m.LastTerm == myTerm && m.LastIndex >= myLast)
		if upToDate {
			grant = true
			r.votedFor = from
		}
	}
	r.send(from, &message{Type: mVote, Term: r.term, Granted: grant})
	return grant
}

func (r *Replica) onVote(from transport.NodeID, m *message) {
	if r.role != candidate || m.Term != r.term || !m.Granted {
		return
	}
	r.votes[from] = true
	r.maybeWinElection()
}

func (r *Replica) maybeWinElection() {
	if r.role != candidate || len(r.votes) < r.quorum {
		return
	}
	r.role = leader
	r.leader = r.id
	r.nextIndex = make(map[transport.NodeID]uint64, len(r.peers))
	r.matchIndex = make(map[transport.NodeID]uint64, len(r.peers)+1)
	r.inflight = make(map[transport.NodeID]bool, len(r.peers))
	for _, p := range r.peers {
		r.nextIndex[p] = r.lastIndex() + 1
	}
	// Commit barrier: a no-op in the new term lets the leader commit
	// entries from previous terms (§5.4.2 of the Raft paper).
	r.appendLocal(rsm.EncodeNoop(), nil)
}

func (r *Replica) onAppend(from transport.NodeID, m *message) bool {
	if m.Term < r.term {
		r.send(from, &message{Type: mAppendResp, Term: r.term, Success: false, Match: 0})
		return false
	}
	if r.role != follower || r.leader != from {
		r.becomeFollower(m.Term, from)
	}
	// Log-matching check at PrevIndex/PrevTerm.
	if m.PrevIndex > r.lastIndex() || (m.PrevIndex >= r.snapIndex && r.termAt(m.PrevIndex) != m.PrevTerm) {
		// Fast backoff: tell the leader our last plausible index.
		hint := r.lastIndex()
		if m.PrevIndex <= hint {
			hint = m.PrevIndex - 1
		}
		r.send(from, &message{Type: mAppendResp, Term: r.term, Success: false, Match: hint})
		return true
	}
	// Append entries, truncating conflicts.
	idx := m.PrevIndex
	for _, e := range m.Entries {
		idx++
		if idx <= r.snapIndex {
			continue // already compacted, hence committed and identical
		}
		if idx <= r.lastIndex() {
			if r.termAt(idx) == e.Term {
				continue
			}
			r.log = r.log[:idx-r.snapIndex-1] // conflict: truncate suffix
		}
		r.log = append(r.log, e)
	}
	last := m.PrevIndex + uint64(len(m.Entries))
	if m.Commit > r.commitIndex {
		r.commitIndex = min(m.Commit, r.lastIndex())
		r.applyCommitted()
	}
	r.send(from, &message{Type: mAppendResp, Term: r.term, Success: true, Match: last})
	return true
}

func (r *Replica) onAppendResp(from transport.NodeID, m *message) {
	if r.role != leader || m.Term != r.term {
		return
	}
	r.inflight[from] = false
	if m.Success {
		if m.Match > r.matchIndex[from] {
			r.matchIndex[from] = m.Match
		}
		if m.Match+1 > r.nextIndex[from] {
			r.nextIndex[from] = m.Match + 1
		}
		r.advanceCommit()
		if r.nextIndex[from] <= r.lastIndex() {
			r.replicateTo(from)
		}
		return
	}
	// Rejected: back off using the follower's hint and retry.
	next := m.Match + 1
	if next < 1 {
		next = 1
	}
	if next < r.nextIndex[from] {
		r.nextIndex[from] = next
	} else if r.nextIndex[from] > 1 {
		r.nextIndex[from]--
	}
	r.replicateTo(from)
}

func (r *Replica) advanceCommit() {
	for n := r.lastIndex(); n > r.commitIndex; n-- {
		if r.termAt(n) != r.term {
			break // only entries of the current term commit by counting
		}
		count := 1 // self
		for _, p := range r.peers {
			if r.matchIndex[p] >= n {
				count++
			}
		}
		if count >= r.quorum {
			r.commitIndex = n
			r.applyCommitted()
			break
		}
	}
}

func (r *Replica) applyCommitted() {
	for r.lastApplied < r.commitIndex {
		r.lastApplied++
		e := r.log[r.lastApplied-r.snapIndex-1]
		result := r.sm.Apply(e.Cmd)
		if p, ok := r.proposals[r.lastApplied]; ok {
			delete(r.proposals, r.lastApplied)
			if p.term == e.Term {
				p.done(result, nil)
			} else {
				p.done(nil, ErrLostLeadership)
			}
		}
	}
	r.maybeCompact()
}

// maybeCompact snapshots the state machine and truncates the applied log
// prefix, bounding memory — the log-management burden the paper's protocol
// avoids by construction.
func (r *Replica) maybeCompact() {
	if r.CompactEvery <= 0 || r.lastApplied-r.snapIndex < uint64(r.CompactEvery) {
		return
	}
	r.snapshot = r.sm.Snapshot()
	r.snapTerm = r.termAt(r.lastApplied)
	r.log = r.entriesFrom(r.lastApplied + 1)
	r.snapIndex = r.lastApplied
}

func (r *Replica) onSnapshot(from transport.NodeID, m *message) bool {
	if m.Term < r.term {
		return false
	}
	if r.role != follower || r.leader != from {
		r.becomeFollower(m.Term, from)
	}
	if m.LastIndex <= r.snapIndex {
		r.send(from, &message{Type: mSnapshotResp, Term: r.term, Match: r.snapIndex})
		return true
	}
	if err := r.sm.Restore(m.Data); err != nil {
		return true
	}
	r.snapshot = m.Data
	r.snapIndex = m.LastIndex
	r.snapTerm = m.LastTerm
	r.log = nil
	r.commitIndex = m.LastIndex
	r.lastApplied = m.LastIndex
	r.send(from, &message{Type: mSnapshotResp, Term: r.term, Match: m.LastIndex})
	return true
}

func (r *Replica) onSnapshotResp(from transport.NodeID, m *message) {
	if r.role != leader || m.Term != r.term {
		return
	}
	r.inflight[from] = false
	if m.Match > r.matchIndex[from] {
		r.matchIndex[from] = m.Match
	}
	r.nextIndex[from] = m.Match + 1
	if r.nextIndex[from] <= r.lastIndex() {
		r.replicateTo(from)
	}
}

// forwardDedupWindow is how far behind an origin's highest-seen request ID
// a remembered ID is kept. Request IDs increase per origin, so anything
// this far back can no longer be a late first delivery.
const forwardDedupWindow = 1 << 12

// dupForward records (origin, reqID) and reports whether it was already
// seen. Duplicates are dropped silently: the first delivery's response
// path answers the origin, and the origin ignores unknown request IDs.
func (r *Replica) dupForward(origin transport.NodeID, reqID uint64) bool {
	seen := r.forwardSeen[origin]
	if seen == nil {
		seen = make(map[uint64]struct{})
		r.forwardSeen[origin] = seen
	}
	if _, ok := seen[reqID]; ok {
		return true
	}
	seen[reqID] = struct{}{}
	if reqID > r.forwardMax[origin] {
		r.forwardMax[origin] = reqID
	}
	if len(seen) > 2*forwardDedupWindow {
		max := r.forwardMax[origin]
		for id := range seen {
			if id+forwardDedupWindow < max {
				delete(seen, id)
			}
		}
	}
	return false
}

func (r *Replica) onForward(from transport.NodeID, m *message) {
	if r.dupForward(from, m.ReqID) {
		return
	}
	if r.role != leader {
		r.send(from, &message{Type: mForwardResp, ReqID: m.ReqID, Err: ErrNoLeader.Error()})
		return
	}
	origin := from
	reqID := m.ReqID
	r.appendLocal(m.Cmd, func(result []byte, err error) {
		resp := &message{Type: mForwardResp, ReqID: reqID, Data: result}
		if err != nil {
			resp.Err = err.Error()
		}
		r.send(origin, resp)
	})
}

func (r *Replica) onForwardResp(m *message) {
	done, ok := r.forwards[m.ReqID]
	if !ok {
		return
	}
	delete(r.forwards, m.ReqID)
	if m.Err != "" {
		if m.Err == ErrNoLeader.Error() {
			done(nil, ErrNoLeader)
		} else {
			done(nil, errors.New(m.Err))
		}
		return
	}
	done(m.Data, nil)
}
