package raft

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"

	"crdtsmr/internal/clock"
	"crdtsmr/internal/rsm"
	"crdtsmr/internal/transport"
)

// ErrStopped is returned for commands submitted to a closed node.
var ErrStopped = errors.New("raft: node stopped")

// Config configures a Raft node.
type Config struct {
	Members []transport.NodeID
	// Clock supplies timers; defaults to the wall clock.
	Clock clock.Clock
	// ElectionTimeout is the base election timeout; the actual timeout is
	// randomized in [base, 2*base]. Default 150 ms.
	ElectionTimeout time.Duration
	// HeartbeatInterval is the leader's replication cadence. Default
	// ElectionTimeout/5.
	HeartbeatInterval time.Duration
	// CompactEvery snapshots and truncates the log after this many applied
	// entries. Default 4096.
	CompactEvery int
	// Seed randomizes election jitter.
	Seed int64
}

func (c Config) withDefaults(id transport.NodeID) Config {
	if c.Clock == nil {
		c.Clock = clock.Real()
	}
	if c.ElectionTimeout <= 0 {
		c.ElectionTimeout = 150 * time.Millisecond
	}
	if c.HeartbeatInterval <= 0 {
		c.HeartbeatInterval = c.ElectionTimeout / 5
	}
	if c.Seed == 0 {
		for _, b := range []byte(id) {
			c.Seed = c.Seed*131 + int64(b)
		}
	}
	return c
}

// Node runs a Raft replica: an event loop serializing messages, client
// proposals, and timers.
type Node struct {
	id      transport.NodeID
	cfg     Config
	replica *Replica
	sm      rsm.StateMachine
	conn    transport.Conn

	events chan raftEvent
	quit   chan struct{}
	wg     sync.WaitGroup

	// Loop-owned.
	rng           *rand.Rand
	electionTimer clock.Timer
	crashed       bool
}

type raftEvent struct {
	kind    raftEventKind
	from    transport.NodeID
	payload []byte
	cmd     []byte
	done    Done
	crash   bool
}

type raftEventKind uint8

const (
	revInbound raftEventKind = iota + 1
	revPropose
	revElection
	revHeartbeat
	revSetCrashed
)

// NewNode creates and starts a Raft node replicating sm.
func NewNode(id transport.NodeID, cfg Config, sm rsm.StateMachine, join func(transport.NodeID, transport.Handler) transport.Conn) (*Node, error) {
	cfg = cfg.withDefaults(id)
	rep, err := NewReplica(id, cfg.Members, sm)
	if err != nil {
		return nil, err
	}
	if cfg.CompactEvery > 0 {
		rep.CompactEvery = cfg.CompactEvery
	}
	n := &Node{
		id:      id,
		cfg:     cfg,
		replica: rep,
		sm:      sm,
		events:  make(chan raftEvent, 8192),
		quit:    make(chan struct{}),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
	}
	n.conn = join(id, n.handleInbound)
	n.wg.Add(1)
	go n.loop()
	return n, nil
}

// ID returns the node ID.
func (n *Node) ID() transport.NodeID { return n.id }

// Execute submits a command and blocks until it commits and applies,
// retrying across leader changes until ctx expires.
func (n *Node) Execute(ctx context.Context, cmd []byte) ([]byte, error) {
	backoff := n.cfg.HeartbeatInterval
	for {
		res := make(chan proposeResult, 1)
		ev := raftEvent{kind: revPropose, cmd: cmd, done: func(result []byte, err error) {
			res <- proposeResult{result: result, err: err}
		}}
		select {
		case n.events <- ev:
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-n.quit:
			return nil, ErrStopped
		}

		tryTimeout := time.NewTimer(2 * n.cfg.ElectionTimeout)
		select {
		case r := <-res:
			tryTimeout.Stop()
			if r.err == nil {
				return r.result, nil
			}
			if !errors.Is(r.err, ErrNoLeader) && !errors.Is(r.err, ErrLostLeadership) {
				return nil, r.err
			}
		case <-tryTimeout.C:
			// Leader likely failed mid-request; retry.
		case <-ctx.Done():
			tryTimeout.Stop()
			return nil, ctx.Err()
		case <-n.quit:
			tryTimeout.Stop()
			return nil, ErrStopped
		}

		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-n.quit:
			return nil, ErrStopped
		}
	}
}

type proposeResult struct {
	result []byte
	err    error
}

// IsLeader reports whether the node currently leads (approximate: read
// outside the loop for metrics only).
func (n *Node) IsLeader() bool { return n.replica.IsLeader() }

// SetCrashed simulates a crash or recovery.
func (n *Node) SetCrashed(crashed bool) {
	select {
	case n.events <- raftEvent{kind: revSetCrashed, crash: crashed}:
	case <-n.quit:
	}
}

// Close stops the node.
func (n *Node) Close() error {
	select {
	case <-n.quit:
		n.wg.Wait()
		return nil
	default:
	}
	close(n.quit)
	n.wg.Wait()
	return n.conn.Close()
}

func (n *Node) handleInbound(from transport.NodeID, payload []byte) {
	select {
	case n.events <- raftEvent{kind: revInbound, from: from, payload: payload}:
	case <-n.quit:
	}
}

func (n *Node) loop() {
	defer n.wg.Done()
	n.resetElectionTimer()
	heartbeat := n.cfg.Clock.AfterFunc(n.cfg.HeartbeatInterval, n.heartbeatTick)
	defer func() {
		heartbeat.Stop()
		if n.electionTimer != nil {
			n.electionTimer.Stop()
		}
	}()
	for {
		select {
		case <-n.quit:
			n.replica.FailForwards()
			n.flush()
			return
		case ev := <-n.events:
			n.handle(ev)
			n.flush()
		}
	}
}

func (n *Node) heartbeatTick() {
	select {
	case n.events <- raftEvent{kind: revHeartbeat}:
	case <-n.quit:
	}
}

func (n *Node) handle(ev raftEvent) {
	switch ev.kind {
	case revInbound:
		if n.crashed {
			return
		}
		if n.replica.Deliver(ev.from, ev.payload) {
			n.resetElectionTimer()
		}
	case revPropose:
		if n.crashed {
			ev.done(nil, ErrNoLeader)
			return
		}
		n.replica.Propose(ev.cmd, ev.done)
	case revElection:
		if n.crashed {
			return
		}
		n.replica.ElectionTimeout()
		n.replica.FailForwards() // forwarded requests to a dead leader
		n.resetElectionTimer()
	case revHeartbeat:
		if !n.crashed {
			n.replica.HeartbeatTick()
		}
		n.cfg.Clock.AfterFunc(n.cfg.HeartbeatInterval, n.heartbeatTick)
	case revSetCrashed:
		n.crashed = ev.crash
		if ev.crash {
			n.replica.FailForwards()
			n.replica.failProposals()
		} else {
			n.resetElectionTimer()
		}
	}
}

func (n *Node) resetElectionTimer() {
	if n.electionTimer != nil {
		n.electionTimer.Stop()
	}
	d := n.cfg.ElectionTimeout + time.Duration(n.rng.Int63n(int64(n.cfg.ElectionTimeout)))
	n.electionTimer = n.cfg.Clock.AfterFunc(d, func() {
		select {
		case n.events <- raftEvent{kind: revElection}:
		case <-n.quit:
		}
	})
}

func (n *Node) flush() {
	for _, e := range n.replica.TakeOutbox() {
		if !n.crashed {
			n.conn.Send(e.To, e.Payload)
		}
	}
}
