package raft

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdtsmr/internal/rsm"
	"crdtsmr/internal/transport"
)

func startRaftCluster(t *testing.T, n int) (*transport.Mesh, []*Node, []*rsm.Counter) {
	t.Helper()
	mesh := transport.NewMesh()
	members := make([]transport.NodeID, n)
	for i := range members {
		members[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	cfg := Config{
		Members:         members,
		ElectionTimeout: 50 * time.Millisecond,
	}
	nodes := make([]*Node, 0, n)
	sms := make([]*rsm.Counter, 0, n)
	for _, id := range members {
		sm := rsm.NewCounter()
		node, err := NewNode(id, cfg, sm, func(id transport.NodeID, h transport.Handler) transport.Conn {
			return mesh.Join(id, h)
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, node)
		sms = append(sms, sm)
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			_ = node.Close()
		}
		mesh.Close()
	})
	return mesh, nodes, sms
}

func TestNodeClusterExecutes(t *testing.T) {
	_, nodes, sms := startRaftCluster(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()

	for i := 0; i < 5; i++ {
		if _, err := nodes[i%3].Execute(ctx, rsm.EncodeInc(1)); err != nil {
			t.Fatalf("execute %d: %v", i, err)
		}
	}
	res, err := nodes[1].Execute(ctx, rsm.EncodeRead())
	if err != nil {
		t.Fatal(err)
	}
	v, err := rsm.DecodeValue(res)
	if err != nil || v != 5 {
		t.Fatalf("read = %d (%v), want 5", v, err)
	}
	_ = sms
}

func TestNodeClusterConcurrentClients(t *testing.T) {
	_, nodes, _ := startRaftCluster(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	const clients, ops = 6, 10
	var wg sync.WaitGroup
	var fails atomic.Int64
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			node := nodes[c%len(nodes)]
			for i := 0; i < ops; i++ {
				if _, err := node.Execute(ctx, rsm.EncodeInc(1)); err != nil {
					fails.Add(1)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if fails.Load() != 0 {
		t.Fatalf("%d clients failed", fails.Load())
	}
	res, err := nodes[0].Execute(ctx, rsm.EncodeRead())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rsm.DecodeValue(res); v != clients*ops {
		t.Fatalf("value = %d, want %d", v, clients*ops)
	}
}

func TestNodeLeaderFailover(t *testing.T) {
	mesh, nodes, _ := startRaftCluster(t, 3)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := nodes[0].Execute(ctx, rsm.EncodeInc(1)); err != nil {
		t.Fatal(err)
	}
	// Find and kill the leader.
	var leaderIdx = -1
	deadline := time.Now().Add(5 * time.Second)
	for leaderIdx < 0 && time.Now().Before(deadline) {
		for i, n := range nodes {
			if n.IsLeader() {
				leaderIdx = i
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if leaderIdx < 0 {
		t.Fatal("no leader emerged")
	}
	mesh.SetDown(nodes[leaderIdx].ID(), true)
	nodes[leaderIdx].SetCrashed(true)

	// A surviving node still gets commands through after a new election.
	survivor := nodes[(leaderIdx+1)%3]
	if _, err := survivor.Execute(ctx, rsm.EncodeInc(1)); err != nil {
		t.Fatalf("execute after failover: %v", err)
	}
	res, err := survivor.Execute(ctx, rsm.EncodeRead())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := rsm.DecodeValue(res); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
}
