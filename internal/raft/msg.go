package raft

import (
	"fmt"

	"crdtsmr/internal/transport"
	"crdtsmr/internal/wire"
)

type msgType uint8

const (
	mRequestVote msgType = iota + 1
	mVote
	mAppend
	mAppendResp
	mSnapshot
	mSnapshotResp
	mForward
	mForwardResp
)

// Entry is one replicated log entry.
type Entry struct {
	Term uint64
	Cmd  []byte
}

// message is the single wire format for all Raft messages; unused fields
// are zero.
type message struct {
	Type      msgType
	Term      uint64
	LastIndex uint64 // RequestVote: candidate's last log index; Snapshot: included index
	LastTerm  uint64 // RequestVote: candidate's last log term; Snapshot: included term
	Granted   bool   // Vote
	PrevIndex uint64 // Append
	PrevTerm  uint64 // Append
	Commit    uint64 // Append: leader commit index
	Entries   []Entry
	Success   bool   // AppendResp
	Match     uint64 // AppendResp / SnapshotResp
	Data      []byte // Snapshot payload; ForwardResp result
	ReqID     uint64 // Forward / ForwardResp correlation
	Cmd       []byte // Forward command
	Err       string // ForwardResp error
}

func (m *message) encode() []byte {
	w := wire.NewWriter(64 + 16*len(m.Entries))
	w.Byte(byte(m.Type))
	w.Uvarint(m.Term)
	w.Uvarint(m.LastIndex)
	w.Uvarint(m.LastTerm)
	w.Bool(m.Granted)
	w.Uvarint(m.PrevIndex)
	w.Uvarint(m.PrevTerm)
	w.Uvarint(m.Commit)
	w.Uvarint(uint64(len(m.Entries)))
	for _, e := range m.Entries {
		w.Uvarint(e.Term)
		w.Raw(e.Cmd)
	}
	w.Bool(m.Success)
	w.Uvarint(m.Match)
	w.Raw(m.Data)
	w.Uvarint(m.ReqID)
	w.Raw(m.Cmd)
	w.Str(m.Err)
	return w.Bytes()
}

func decodeMessage(p []byte) (*message, error) {
	r := wire.NewReader(p)
	m := &message{
		Type:      msgType(r.Byte()),
		Term:      r.Uvarint(),
		LastIndex: r.Uvarint(),
		LastTerm:  r.Uvarint(),
		Granted:   r.Bool(),
		PrevIndex: r.Uvarint(),
		PrevTerm:  r.Uvarint(),
		Commit:    r.Uvarint(),
	}
	n := r.Uvarint()
	if n > 1<<20 {
		return nil, fmt.Errorf("raft: absurd entry count %d", n)
	}
	m.Entries = make([]Entry, 0, n)
	for i := uint64(0); i < n; i++ {
		m.Entries = append(m.Entries, Entry{Term: r.Uvarint(), Cmd: r.Raw()})
	}
	m.Success = r.Bool()
	m.Match = r.Uvarint()
	m.Data = r.Raw()
	m.ReqID = r.Uvarint()
	m.Cmd = r.Raw()
	m.Err = r.Str()
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("raft: decode: %w", err)
	}
	if m.Type < mRequestVote || m.Type > mForwardResp {
		return nil, fmt.Errorf("raft: unknown message type %d", m.Type)
	}
	return m, nil
}

// Envelope is an outbound message for the runtime to transmit.
type Envelope struct {
	To      transport.NodeID
	Payload []byte
}
