package raft

import (
	"errors"
	"fmt"
	"testing"

	"crdtsmr/internal/rsm"
	"crdtsmr/internal/transport"
)

// rnet is a manual message pool for deterministic Raft tests, mirroring the
// harness used for the core protocol.
type rnet struct {
	t    *testing.T
	reps map[transport.NodeID]*Replica
	sms  map[transport.NodeID]*rsm.Counter
	pool []renv
}

type renv struct {
	from, to transport.NodeID
	typ      msgType
	payload  []byte
}

func newRNet(t *testing.T, n int) *rnet {
	t.Helper()
	members := make([]transport.NodeID, n)
	for i := range members {
		members[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	nw := &rnet{
		t:    t,
		reps: make(map[transport.NodeID]*Replica, n),
		sms:  make(map[transport.NodeID]*rsm.Counter, n),
	}
	for _, id := range members {
		sm := rsm.NewCounter()
		rep, err := NewReplica(id, members, sm)
		if err != nil {
			t.Fatal(err)
		}
		nw.reps[id] = rep
		nw.sms[id] = sm
	}
	return nw
}

func (nw *rnet) pump() {
	for _, rep := range nw.reps {
		for _, e := range rep.TakeOutbox() {
			m, err := decodeMessage(e.Payload)
			if err != nil {
				nw.t.Fatalf("bad outbound message: %v", err)
			}
			nw.pool = append(nw.pool, renv{from: rep.ID(), to: e.To, typ: m.Type, payload: e.Payload})
		}
	}
}

func (nw *rnet) deliver(match func(renv) bool) int {
	delivered := 0
	for i := 0; i < len(nw.pool); {
		e := nw.pool[i]
		if !match(e) {
			i++
			continue
		}
		nw.pool = append(nw.pool[:i], nw.pool[i+1:]...)
		if rep, ok := nw.reps[e.to]; ok {
			rep.Deliver(e.from, e.payload)
			nw.pump()
		}
		delivered++
	}
	return delivered
}

func (nw *rnet) drain() {
	for len(nw.pool) > 0 {
		nw.deliver(func(renv) bool { return true })
	}
}

func (nw *rnet) drop(match func(renv) bool) {
	for i := 0; i < len(nw.pool); {
		if match(nw.pool[i]) {
			nw.pool = append(nw.pool[:i], nw.pool[i+1:]...)
			continue
		}
		i++
	}
}

// elect makes the given replica leader by firing its election timeout and
// draining the network.
func (nw *rnet) elect(id transport.NodeID) {
	nw.t.Helper()
	nw.reps[id].ElectionTimeout()
	nw.pump()
	nw.drain()
	if !nw.reps[id].IsLeader() {
		nw.t.Fatalf("%s failed to win election", id)
	}
}

func TestElectionBasic(t *testing.T) {
	nw := newRNet(t, 3)
	nw.elect("n1")
	// All replicas agree on the leader and the term.
	for id, rep := range nw.reps {
		if rep.Leader() != "n1" {
			t.Fatalf("%s sees leader %q, want n1", id, rep.Leader())
		}
		if rep.Term() != 1 {
			t.Fatalf("%s term = %d, want 1", id, rep.Term())
		}
	}
}

func TestSingleNodeClusterLeadsItself(t *testing.T) {
	nw := newRNet(t, 1)
	nw.elect("n1")
	var got int64 = -1
	nw.reps["n1"].Propose(rsm.EncodeInc(5), func(res []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		got = nw.sms["n1"].Value()
	})
	nw.pump()
	nw.drain()
	if got != 5 {
		t.Fatalf("value = %d, want 5", got)
	}
}

func TestProposeCommitApply(t *testing.T) {
	nw := newRNet(t, 3)
	nw.elect("n1")

	committed := false
	nw.reps["n1"].Propose(rsm.EncodeInc(7), func(res []byte, err error) {
		if err != nil {
			t.Fatalf("propose: %v", err)
		}
		committed = true
	})
	nw.pump()
	nw.drain()
	if !committed {
		t.Fatal("proposal did not commit")
	}
	// A heartbeat propagates the leader's commit index to followers.
	nw.reps["n1"].HeartbeatTick()
	nw.pump()
	nw.drain()
	for id, sm := range nw.sms {
		if v := sm.Value(); v != 7 {
			t.Fatalf("%s applied value = %d, want 7", id, v)
		}
	}
}

func TestReadThroughLog(t *testing.T) {
	nw := newRNet(t, 3)
	nw.elect("n1")
	nw.reps["n1"].Propose(rsm.EncodeInc(3), nil)
	nw.pump()
	nw.drain()

	var got int64 = -1
	nw.reps["n1"].Propose(rsm.EncodeRead(), func(res []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		v, err := rsm.DecodeValue(res)
		if err != nil {
			t.Fatal(err)
		}
		got = v
	})
	nw.pump()
	nw.drain()
	if got != 3 {
		t.Fatalf("read = %d, want 3", got)
	}
}

func TestForwardingFromFollower(t *testing.T) {
	nw := newRNet(t, 3)
	nw.elect("n1")

	done := false
	nw.reps["n2"].Propose(rsm.EncodeInc(1), func(res []byte, err error) {
		if err != nil {
			t.Fatalf("forwarded propose: %v", err)
		}
		done = true
	})
	nw.pump()
	nw.drain()
	if !done {
		t.Fatal("forwarded proposal did not complete")
	}
}

func TestProposeWithNoLeaderFailsFast(t *testing.T) {
	nw := newRNet(t, 3)
	var gotErr error
	nw.reps["n1"].Propose(rsm.EncodeInc(1), func(res []byte, err error) { gotErr = err })
	if !errors.Is(gotErr, ErrNoLeader) {
		t.Fatalf("err = %v, want ErrNoLeader", gotErr)
	}
}

func TestLeaderStepsDownOnHigherTerm(t *testing.T) {
	nw := newRNet(t, 3)
	nw.elect("n1")
	// n2 becomes a candidate at a higher term (e.g. after a partition).
	nw.reps["n2"].ElectionTimeout()
	nw.pump()
	nw.drain()
	if nw.reps["n1"].IsLeader() && nw.reps["n2"].IsLeader() {
		t.Fatal("two leaders")
	}
	if nw.reps["n1"].Term() < nw.reps["n2"].Term() {
		t.Fatal("old leader did not adopt the higher term")
	}
}

func TestUncommittedEntriesFailOnLeaderChange(t *testing.T) {
	nw := newRNet(t, 3)
	nw.elect("n1")
	nw.drain()

	// n1 proposes, but replication to followers is lost.
	var gotErr error
	fired := false
	nw.reps["n1"].Propose(rsm.EncodeInc(9), func(res []byte, err error) {
		fired = true
		gotErr = err
	})
	nw.pump()
	nw.drop(func(renv) bool { return true })

	// n2 wins a new election (its log is as up to date as n1's committed
	// prefix; n3 grants).
	nw.reps["n2"].ElectionTimeout()
	nw.pump()
	nw.deliver(func(e renv) bool { return e.to == "n3" || e.from == "n3" })
	if !nw.reps["n2"].IsLeader() {
		t.Fatal("n2 did not win")
	}
	nw.drain()
	// Old leader learns the new term and fails its dangling proposal.
	nw.reps["n2"].HeartbeatTick()
	nw.pump()
	nw.drain()
	if !fired {
		t.Fatal("dangling proposal never resolved")
	}
	if !errors.Is(gotErr, ErrLostLeadership) {
		t.Fatalf("err = %v, want ErrLostLeadership", gotErr)
	}
}

func TestConflictingSuffixTruncated(t *testing.T) {
	nw := newRNet(t, 3)
	nw.elect("n1")
	nw.drain()

	// n1 appends two entries no one receives.
	nw.reps["n1"].Propose(rsm.EncodeInc(100), func([]byte, error) {})
	nw.reps["n1"].Propose(rsm.EncodeInc(200), func([]byte, error) {})
	nw.pump()
	nw.drop(func(renv) bool { return true })
	lenBefore := nw.reps["n1"].LogLen()

	// n2 becomes leader via n3 and commits a different entry.
	nw.reps["n2"].ElectionTimeout()
	nw.pump()
	nw.deliver(func(e renv) bool { return e.to == "n3" || e.from == "n3" })
	if !nw.reps["n2"].IsLeader() {
		t.Fatal("n2 did not win")
	}
	nw.drain()
	committed := false
	nw.reps["n2"].Propose(rsm.EncodeInc(1), func(res []byte, err error) {
		if err != nil {
			t.Fatal(err)
		}
		committed = true
	})
	nw.pump()
	nw.drain()
	if !committed {
		t.Fatal("n2's proposal did not commit")
	}

	// n1 rejoins; the new leader overwrites its conflicting suffix.
	nw.reps["n2"].HeartbeatTick()
	nw.pump()
	nw.drain()
	nw.reps["n2"].HeartbeatTick()
	nw.pump()
	nw.drain()
	if v := nw.sms["n1"].Value(); v != 1 {
		t.Fatalf("n1 applied %d, want 1 (conflicting entries must not apply)", v)
	}
	_ = lenBefore
	// n1's log now matches the leader's.
	if nw.reps["n1"].LogLen() != nw.reps["n2"].LogLen() {
		t.Fatalf("log lengths diverge: %d vs %d", nw.reps["n1"].LogLen(), nw.reps["n2"].LogLen())
	}
}

func TestVoteDeniedToStaleLog(t *testing.T) {
	nw := newRNet(t, 3)
	nw.elect("n1")
	committed := false
	nw.reps["n1"].Propose(rsm.EncodeInc(1), func(res []byte, err error) { committed = err == nil })
	nw.pump()
	nw.drain()
	if !committed {
		t.Fatal("setup commit failed")
	}

	// n3 is wiped and replaced by a fresh, empty-logged replica at term 0
	// that immediately campaigns: with a stale log it must not win against
	// replicas holding committed entries.
	members := []transport.NodeID{"n1", "n2", "n3"}
	freshSM := rsm.NewCounter()
	fresh, err := NewReplica("n3", members, freshSM)
	if err != nil {
		t.Fatal(err)
	}
	nw.reps["n3"] = fresh
	nw.sms["n3"] = freshSM
	fresh.ElectionTimeout()
	nw.pump()
	nw.drain()
	if fresh.IsLeader() {
		t.Fatal("replica with stale log won election")
	}
}

func TestCompactionAndSnapshotCatchUp(t *testing.T) {
	nw := newRNet(t, 3)
	nw.elect("n1")
	nw.drain()
	leaderRep := nw.reps["n1"]
	leaderRep.CompactEvery = 4

	// Commit entries while n3 hears nothing.
	for i := 0; i < 10; i++ {
		leaderRep.Propose(rsm.EncodeInc(1), nil)
		nw.pump()
		nw.deliver(func(e renv) bool { return e.to != "n3" && e.from != "n3" })
		nw.drop(func(e renv) bool { return e.to == "n3" })
	}
	if leaderRep.LogLen() >= 10 {
		t.Fatalf("leader log not compacted: %d entries", leaderRep.LogLen())
	}

	// n3 reconnects: replication must fall back to a snapshot.
	leaderRep.HeartbeatTick()
	nw.pump()
	nw.drain()
	leaderRep.HeartbeatTick()
	nw.pump()
	nw.drain()
	if v := nw.sms["n3"].Value(); v != 10 {
		t.Fatalf("n3 caught up to %d, want 10", v)
	}
}

func TestDeliverGarbage(t *testing.T) {
	nw := newRNet(t, 3)
	nw.reps["n1"].Deliver("n2", []byte{0xde, 0xad})
	nw.reps["n1"].Deliver("n2", nil)
	// Still functional.
	nw.elect("n1")
}

func TestMessageCodec(t *testing.T) {
	in := &message{
		Type:      mAppend,
		Term:      9,
		PrevIndex: 4,
		PrevTerm:  3,
		Commit:    4,
		Entries:   []Entry{{Term: 9, Cmd: rsm.EncodeInc(2)}, {Term: 9, Cmd: rsm.EncodeRead()}},
	}
	out, err := decodeMessage(in.encode())
	if err != nil {
		t.Fatal(err)
	}
	if out.Term != 9 || out.PrevIndex != 4 || len(out.Entries) != 2 {
		t.Fatalf("round trip mangled: %+v", out)
	}
	if _, err := decodeMessage([]byte{}); err == nil {
		t.Fatal("empty decoded")
	}
	if _, err := decodeMessage([]byte{200, 1, 1}); err == nil {
		t.Fatal("unknown type decoded")
	}
}
