// Package raft implements the Raft consensus algorithm (Ongaro &
// Ousterhout, USENIX ATC 2014) as one of the paper's two baselines: leader
// election with randomized timeouts, log replication with the log-matching
// property, snapshot-based log compaction, and linearizable reads appended
// to the command log — the configuration the paper benchmarked ("The Raft
// implementation appends both updates and consistent reads to its command
// log", §4.1).
//
// Like internal/core, the Replica here is a pure single-threaded state
// machine; Node wraps it with an event loop and timers.
package raft
