package crdtsmr

import (
	"context"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestFacadeCounter(t *testing.T) {
	cl, err := NewLocalCluster(3, NewGCounter())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)

	a := cl.Counter("n1")
	b := cl.Counter("n2")
	if err := a.Inc(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Inc(ctx, 4); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Counter("n3").Value(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("value = %d, want 7", v)
	}
}

func TestFacadeSet(t *testing.T) {
	cl, err := NewLocalCluster(3, NewORSet())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)

	s1 := cl.Set("n1")
	s2 := cl.Set("n2")
	if err := s1.Add(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Add(ctx, "bob"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Remove(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Set("n3").Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "bob" {
		t.Fatalf("elements = %v, want [bob]", got)
	}
}

func TestFacadeCrashRecover(t *testing.T) {
	cl, err := NewLocalCluster(3, NewGCounter())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)

	ctr := cl.Counter("n1")
	if err := ctr.Inc(ctx, 1); err != nil {
		t.Fatal(err)
	}
	cl.Crash("n3")
	if err := ctr.Inc(ctx, 1); err != nil {
		t.Fatalf("update during minority crash: %v", err)
	}
	cl.Recover("n3")
	v, err := cl.Counter("n3").Value(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("value after recovery = %d, want 2", v)
	}
}

func TestFacadeTypeMismatch(t *testing.T) {
	cl, err := NewLocalCluster(3, NewORSet())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)
	if err := cl.Counter("n1").Inc(ctx, 1); err == nil {
		t.Fatal("counter handle on a set payload should fail")
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := NewLocalCluster(0, NewGCounter()); err == nil {
		t.Fatal("zero replicas accepted")
	}
	cl, err := NewLocalCluster(1, NewGCounter())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)
	if err := cl.Update(ctx, "ghost", func(s State) (State, error) { return s, nil }); err == nil {
		t.Fatal("unknown replica accepted")
	}
	if _, _, err := cl.Query(ctx, "ghost"); err == nil {
		t.Fatal("unknown replica accepted for query")
	}
	if len(cl.NodeIDs()) != 1 {
		t.Fatal("node IDs wrong")
	}
}

func TestFacadeBatchingOption(t *testing.T) {
	cl, err := NewLocalCluster(3, NewGCounter(), WithBatching(2*time.Millisecond), WithNetworkDelay(10*time.Microsecond, 50*time.Microsecond), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)
	ctr := cl.Counter("n2")
	for i := 0; i < 5; i++ {
		if err := ctr.Inc(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	v, err := ctr.Value(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("value = %d, want 5", v)
	}
}
