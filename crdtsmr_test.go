package crdtsmr

import (
	"context"
	"strings"
	"testing"
	"time"
)

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestFacadeCounter(t *testing.T) {
	cl, err := NewLocalCluster(3, NewGCounter())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)

	a := cl.Counter("n1")
	b := cl.Counter("n2")
	if err := a.Inc(ctx, 3); err != nil {
		t.Fatal(err)
	}
	if err := b.Inc(ctx, 4); err != nil {
		t.Fatal(err)
	}
	v, err := cl.Counter("n3").Value(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 7 {
		t.Fatalf("value = %d, want 7", v)
	}
}

func TestFacadeSet(t *testing.T) {
	cl, err := NewLocalCluster(3, NewORSet())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)

	s1 := cl.Set("n1")
	s2 := cl.Set("n2")
	if err := s1.Add(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Add(ctx, "bob"); err != nil {
		t.Fatal(err)
	}
	if err := s1.Remove(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Set("n3").Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "bob" {
		t.Fatalf("elements = %v, want [bob]", got)
	}
}

func TestFacadeCrashRecover(t *testing.T) {
	cl, err := NewLocalCluster(3, NewGCounter())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)

	ctr := cl.Counter("n1")
	if err := ctr.Inc(ctx, 1); err != nil {
		t.Fatal(err)
	}
	cl.Crash("n3")
	if err := ctr.Inc(ctx, 1); err != nil {
		t.Fatalf("update during minority crash: %v", err)
	}
	cl.Recover("n3")
	v, err := cl.Counter("n3").Value(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("value after recovery = %d, want 2", v)
	}
}

func TestFacadeTypeMismatch(t *testing.T) {
	cl, err := NewLocalCluster(3, NewORSet())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)
	if err := cl.Counter("n1").Inc(ctx, 1); err == nil {
		t.Fatal("counter handle on a set payload should fail")
	}
}

func TestFacadeValidation(t *testing.T) {
	if _, err := NewLocalCluster(0, NewGCounter()); err == nil {
		t.Fatal("zero replicas accepted")
	}
	cl, err := NewLocalCluster(1, NewGCounter())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)
	if err := cl.Update(ctx, "ghost", func(s State) (State, error) { return s, nil }); err == nil {
		t.Fatal("unknown replica accepted")
	}
	if _, _, err := cl.Query(ctx, "ghost"); err == nil {
		t.Fatal("unknown replica accepted for query")
	}
	if len(cl.NodeIDs()) != 1 {
		t.Fatal("node IDs wrong")
	}
}

func TestFacadeBatchingOption(t *testing.T) {
	cl, err := NewLocalCluster(3, NewGCounter(), WithBatching(2*time.Millisecond), WithNetworkDelay(10*time.Microsecond, 50*time.Microsecond), WithSeed(7))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)
	ctr := cl.Counter("n2")
	for i := 0; i < 5; i++ {
		if err := ctr.Inc(ctx, 1); err != nil {
			t.Fatal(err)
		}
	}
	v, err := ctr.Value(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("value = %d, want 5", v)
	}
}

func TestFacadeObjectKeysIndependent(t *testing.T) {
	cl, err := NewLocalCluster(3, NewGCounter())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)

	views := cl.Object("article/1").Counter("n1")
	likes := cl.Object("article/2").Counter("n2")
	if err := views.Inc(ctx, 5); err != nil {
		t.Fatal(err)
	}
	if err := likes.Inc(ctx, 2); err != nil {
		t.Fatal(err)
	}

	// Reads at other replicas see each key independently.
	v, err := cl.Object("article/1").Counter("n3").Value(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 5 {
		t.Fatalf("article/1 = %d, want 5", v)
	}
	v, err = cl.Object("article/2").Counter("n1").Value(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("article/2 = %d, want 2", v)
	}

	// The default object is untouched by keyed traffic.
	v, err = cl.Counter("n1").Value(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("default object = %d, want 0", v)
	}
	if key := cl.Object("article/1").Key(); key != "article/1" {
		t.Fatalf("key = %q", key)
	}
}

func TestFacadeObjectMixedTypes(t *testing.T) {
	cl, err := NewLocalCluster(3, NewGCounter(), WithObjectInitial(func(key string) State {
		switch {
		case strings.HasPrefix(key, "set/"):
			return NewORSet()
		case strings.HasPrefix(key, "reg/"):
			return NewLWWRegister()
		default:
			return NewGCounter()
		}
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)

	if err := cl.Object("hits").Counter("n1").Inc(ctx, 1); err != nil {
		t.Fatal(err)
	}
	members := cl.Object("set/team").Set("n2")
	if err := members.Add(ctx, "alice"); err != nil {
		t.Fatal(err)
	}
	banner := cl.Object("reg/banner").Register("n3")
	if err := banner.Store(ctx, "hello"); err != nil {
		t.Fatal(err)
	}

	got, err := cl.Object("set/team").Set("n1").Elements(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "alice" {
		t.Fatalf("set = %v", got)
	}
	val, ok, err := cl.Object("reg/banner").Register("n2").Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || val != "hello" {
		t.Fatalf("register = %q ok=%t, want hello", val, ok)
	}
	// Wrong-typed handles fail cleanly instead of corrupting the payload.
	if err := cl.Object("set/team").Counter("n1").Inc(ctx, 1); err == nil {
		t.Fatal("counter handle on a set key should fail")
	}
}

func TestFacadeRegisterLastWriterWins(t *testing.T) {
	cl, err := NewLocalCluster(3, NewLWWRegister())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)

	reg := cl.Object(DefaultKey).Register("n1")
	if _, ok, err := reg.Load(ctx); err != nil || ok {
		t.Fatalf("unwritten register: ok=%t err=%v", ok, err)
	}
	if err := reg.Store(ctx, "first"); err != nil {
		t.Fatal(err)
	}
	if err := cl.Object(DefaultKey).Register("n2").Store(ctx, "second"); err != nil {
		t.Fatal(err)
	}
	val, ok, err := cl.Object(DefaultKey).Register("n3").Load(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !ok || val != "second" {
		t.Fatalf("register = %q ok=%t, want second (later write wins)", val, ok)
	}
}

func TestFacadeKeysListing(t *testing.T) {
	cl, err := NewLocalCluster(3, NewGCounter())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	ctx := testCtx(t)

	if err := cl.Object("a").Counter("n1").Inc(ctx, 1); err != nil {
		t.Fatal(err)
	}
	if err := cl.Object("b").Counter("n1").Inc(ctx, 1); err != nil {
		t.Fatal(err)
	}
	keys := cl.Keys("n1")
	want := []string{DefaultKey, "a", "b"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %q, want %q", keys, want)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %q, want %q", keys, want)
		}
	}
}
