package client

import (
	"testing"
	"time"
)

// TestRetryPolicyDelayBounds pins the backoff schedule's envelope: retry
// n sleeps between half and all of min(Backoff·2ⁿ⁻¹, MaxBackoff) — the
// equal-jitter property every timing budget in the test suite and every
// overloaded server's recovery depends on.
func TestRetryPolicyDelayBounds(t *testing.T) {
	p := RetryPolicy{Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	for n := 1; n <= 10; n++ {
		full := p.Backoff << (n - 1)
		if full > p.MaxBackoff {
			full = p.MaxBackoff
		}
		for trial := 0; trial < 200; trial++ {
			if d := p.delay(n); d < full/2 || d > full {
				t.Fatalf("delay(%d) = %v outside [%v, %v]", n, d, full/2, full)
			}
		}
	}
}

func TestRetryPolicyDelayJitters(t *testing.T) {
	p := RetryPolicy{Backoff: 10 * time.Millisecond, MaxBackoff: 80 * time.Millisecond}
	seen := map[time.Duration]bool{}
	for trial := 0; trial < 100; trial++ {
		seen[p.delay(5)] = true
	}
	if len(seen) < 2 {
		t.Fatal("delay(5) never varied: a shed client fleet would retry in lockstep")
	}
}

// TestRetryPolicyDelayCapFollowsBase: a policy that sets only a large
// base must not have the (smaller) default cap silently shrink it.
func TestRetryPolicyDelayCapFollowsBase(t *testing.T) {
	p := RetryPolicy{Backoff: 50 * time.Millisecond, MaxBackoff: 10 * time.Millisecond}
	for trial := 0; trial < 100; trial++ {
		if d := p.delay(7); d < 25*time.Millisecond || d > 50*time.Millisecond {
			t.Fatalf("delay(7) = %v outside [25ms, 50ms] with cap below base", d)
		}
	}
	if d := (RetryPolicy{}).delay(3); d != 0 {
		t.Fatalf("zero policy delay = %v, want 0", d)
	}
}
