package client_test

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
	"crdtsmr/internal/transport"
)

// servedCluster is a replica group over an in-process mesh, each node
// fronted by a network server — the deployment every test in this
// package drives, with knobs for the ones that inject faults.
type servedCluster struct {
	mesh  *transport.Mesh
	cl    *cluster.Cluster
	ids   []transport.NodeID
	addrs map[transport.NodeID]string // client-facing server addresses
}

func startServedCluster(t *testing.T, n int, seed int64, requestTimeout time.Duration) *servedCluster {
	return startServedClusterMode(t, n, seed, requestTimeout, core.TransferFull)
}

// startServedClusterMode is startServedCluster with an explicit replica
// wire state-transfer mode (the chaos sweep runs with deltas on).
func startServedClusterMode(t *testing.T, n int, seed int64, requestTimeout time.Duration, mode core.StateTransfer) *servedCluster {
	return startServedClusterWith(t, n, seed, requestTimeout, func(cfg *cluster.Config) {
		cfg.StateTransfer = mode
	})
}

// startServedClusterWith is the fully general form: customize edits the
// cluster config before the nodes start (state-transfer mode, a DataDir
// for the crash/restart tests, ...).
func startServedClusterWith(t *testing.T, n int, seed int64, requestTimeout time.Duration, customize func(*cluster.Config)) *servedCluster {
	t.Helper()
	mesh := transport.NewMesh(transport.WithSeed(seed))
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	cfg := cluster.Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		InitialForKey:      server.TypedKeyInitial(crdt.TypeGCounter),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
	}
	if customize != nil {
		customize(&cfg)
	}
	cl, err := cluster.New(mesh, cfg)
	if err != nil {
		mesh.Close()
		t.Fatal(err)
	}
	sc := &servedCluster{mesh: mesh, cl: cl, ids: ids, addrs: make(map[transport.NodeID]string, n)}
	var servers []*server.Server
	for _, id := range ids {
		srv, err := server.Start(cl.Node(id), "127.0.0.1:0", server.Options{RequestTimeout: requestTimeout})
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		sc.addrs[id] = srv.Addr()
	}
	t.Cleanup(func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
		cl.Close()
		mesh.Close()
	})
	return sc
}

func (c *servedCluster) addrsOf(ids ...transport.NodeID) []string {
	out := make([]string, 0, len(ids))
	for _, id := range ids {
		out = append(out, c.addrs[id])
	}
	return out
}

// startCluster runs n replicas with default fault knobs and returns the
// server addresses in member order plus the cluster for crash injection.
func startCluster(t *testing.T, n int) (addrs []string, cl *cluster.Cluster) {
	t.Helper()
	sc := startServedCluster(t, n, 1, 5*time.Second)
	return sc.addrsOf(sc.ids...), sc.cl
}

// TestRetryOnDownNode is the failover contract of the client library: with
// one server's replica down (SetCrashed through the cluster), updates and
// reads submitted to a client that lists every server must still succeed —
// the down replica answers StatusUnavailable (provably not applied) and the
// client retries the operation on the next address.
func TestRetryOnDownNode(t *testing.T) {
	addrs, cl := startCluster(t, 3)
	ctx := context.Background()

	c, err := client.New(addrs,
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 6, Backoff: time.Millisecond}),
		client.WithRequestTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Touch every address once so the pool has live connections to the
	// node that is about to go down.
	for range addrs {
		if err := c.Ping(ctx); err != nil {
			t.Fatal(err)
		}
	}

	cl.Crash("n1") // SetCrashed(true) under the hood; its server stays up

	// A 2/3 quorum remains: every operation must complete despite ~1/3 of
	// attempts landing on the crashed replica first.
	ctr := c.Counter("failover")
	const ops = 30
	for i := 0; i < ops; i++ {
		if err := ctr.Inc(ctx, 1); err != nil {
			t.Fatalf("inc %d with one node down: %v", i, err)
		}
		if _, err := ctr.Value(ctx); err != nil {
			t.Fatalf("read %d with one node down: %v", i, err)
		}
	}
	if v, err := ctr.Value(ctx); err != nil || v != ops {
		t.Fatalf("counter = %d, %v; want %d", v, err, ops)
	}

	// After recovery the previously down replica serves again.
	cl.Recover("n1")
	c1, err := client.New(addrs[:1], client.WithRequestTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if v, err := c1.Counter("failover").Value(ctx); err != nil || v != ops {
		t.Fatalf("recovered replica reads %d, %v; want %d", v, err, ops)
	}
}

// TestRetryDialFailure lists a dead address first: operations must fail
// over to the live servers (dialing sent nothing, so even updates retry).
func TestRetryDialFailure(t *testing.T) {
	addrs, _ := startCluster(t, 3)

	// Reserve-and-release a port so the first address refuses connections.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	_ = ln.Close()

	c, err := client.New(append([]string{dead}, addrs...),
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 8, Backoff: time.Millisecond}),
		client.WithDialTimeout(500*time.Millisecond),
		client.WithRequestTimeout(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Counter("k").Inc(ctx, 1); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if v, err := c.Counter("k").Value(ctx); err != nil || v != 8 {
		t.Fatalf("counter = %d, %v; want 8", v, err)
	}
}

// TestPerRequestTimeout checks that a context deadline fails an operation
// promptly — with an error matching both ErrTimeout and
// context.DeadlineExceeded — instead of hanging on an unresponsive
// address.
func TestPerRequestTimeout(t *testing.T) {
	// A listener that accepts and never answers.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			defer conn.Close()
		}
	}()

	c, err := client.New([]string{ln.Addr().String()})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = c.Ping(ctx)
	if err == nil {
		t.Fatal("ping of a black-hole server succeeded")
	}
	if !errors.Is(err, client.ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timeout error %v matches neither ErrTimeout nor DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v", elapsed)
	}
}

// TestWithDialerRoutesConnections checks that a custom Dialer sees every
// dial and can rewrite the target — the seam for proxies and in-process
// transports.
func TestWithDialerRoutesConnections(t *testing.T) {
	addrs, _ := startCluster(t, 1)

	var dials atomic.Int32
	d := dialerFunc(func(ctx context.Context, network, address string) (net.Conn, error) {
		dials.Add(1)
		// The client was configured with a placeholder address; the dialer
		// routes it to the real server.
		if address != "placeholder:1" {
			return nil, fmt.Errorf("unexpected dial target %q", address)
		}
		var nd net.Dialer
		return nd.DialContext(ctx, network, addrs[0])
	})

	c, err := client.New([]string{"placeholder:1"}, client.WithDialer(d))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}
	if dials.Load() == 0 {
		t.Fatal("custom dialer was never used")
	}
}

type dialerFunc func(ctx context.Context, network, address string) (net.Conn, error)

func (f dialerFunc) DialContext(ctx context.Context, network, address string) (net.Conn, error) {
	return f(ctx, network, address)
}

// TestClusterDownIsUnavailable: when every dial is refused (the whole
// cluster is down), nothing was ever sent — the exhausted-budget error
// must carry the ErrUnavailable class so callers can classify the most
// common outage mode with the same errors.Is they use everywhere else.
func TestClusterDownIsUnavailable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	_ = ln.Close()

	c, err := client.New([]string{dead},
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}),
		client.WithDialTimeout(500*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Counter("k").Inc(context.Background(), 1)
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("cluster-down update: %v, want ErrUnavailable", err)
	}
	if errors.Is(err, client.ErrUncertain) {
		t.Fatalf("cluster-down update %v claims ErrUncertain though nothing was sent", err)
	}
}

// TestClosedClient checks operations after Close fail fast with ErrClosed.
func TestClosedClient(t *testing.T) {
	addrs, _ := startCluster(t, 1)
	c, err := client.New(addrs)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if err := c.Ping(context.Background()); !errors.Is(err, client.ErrClosed) {
		t.Fatalf("ping on a closed client: %v, want ErrClosed", err)
	}
}

// TestEmptyAddrs checks the constructor rejects an empty address list.
func TestEmptyAddrs(t *testing.T) {
	if _, err := client.New(nil); err == nil {
		t.Fatal("New(nil) succeeded")
	}
}
