package client

// The package's error surface is deliberately small and matchable with
// errors.Is / errors.As:
//
//   - Sentinels classify a failure by what the caller may safely do next
//     (ErrUnavailable → retry anywhere, ErrUncertain → only read-only
//     retries, ErrTimeout/ErrClosed/ErrTypeMismatch → terminal here).
//   - *StatusError carries the wire status code and message of a non-OK
//     server response verbatim, for callers that need the exact protocol
//     status rather than its retry class.
//
// Every error returned by this package matches at most one retry-class
// sentinel; StatusError additionally matches the sentinel its status
// implies, so `errors.Is(err, client.ErrUnavailable)` works whether the
// classification happened locally or on the server.

import (
	"errors"
	"fmt"

	"crdtsmr/internal/wire"
)

// Status is a client-protocol response status code, as defined in
// docs/PROTOCOL.md §2.5. The zero value is StatusOK; every other value
// reaches callers wrapped in a *StatusError.
type Status uint8

// The values are tied to the wire constants so the two copies cannot
// drift: the client classifies responses by these exact bytes.
const (
	// StatusOK: the operation completed.
	StatusOK = Status(wire.StatusOK)
	// StatusUnavailable: the operation provably did not execute (the
	// replica refused it before running the protocol, or the operation is
	// read-only and therefore has no effects to be uncertain about).
	// Retrying on any replica is always safe.
	StatusUnavailable = Status(wire.StatusUnavailable)
	// StatusUncertain: the operation was accepted but its fate is unknown
	// (timed out or aborted mid-protocol). An update may or may not have
	// been applied.
	StatusUncertain = Status(wire.StatusUncertain)
	// StatusBadRequest: the request named an unknown mutation or admin
	// command, or carried bad operands. Retrying it cannot succeed.
	StatusBadRequest = Status(wire.StatusBadRequest)
	// StatusFailed: the operation ran and failed terminally — the wire
	// name is "error" (e.g. a mutation applied to an object of a
	// different CRDT type).
	StatusFailed = Status(wire.StatusError)
	// StatusBusy: the server shed the operation (or, on request ID 0,
	// the whole connection) at admission — before any of it executed —
	// because a load limit was exceeded. Provably not applied; retrying
	// anywhere is safe after backing off.
	StatusBusy = Status(wire.StatusBusy)
)

// String renders the status by its docs/PROTOCOL.md name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusUnavailable:
		return "unavailable"
	case StatusUncertain:
		return "uncertain"
	case StatusBadRequest:
		return "bad request"
	case StatusFailed:
		return "error"
	case StatusBusy:
		return "busy"
	default:
		return fmt.Sprintf("status %d", uint8(s))
	}
}

// Sentinel errors. Operations return errors matching (errors.Is) at most
// one of the retry-class sentinels; see the package documentation for the
// retry contract each implies.
var (
	// ErrClosed is returned by operations on a closed client.
	ErrClosed = errors.New("client: closed")

	// ErrUnavailable means the operation provably was not applied: the
	// client may retry it — any operation, against any replica — without
	// risking a duplicate effect. The client does so itself within its
	// retry budget; an error still matching ErrUnavailable means the
	// budget ran out with every attempt refused.
	ErrUnavailable = errors.New("client: cluster unavailable")

	// ErrUncertain means an update's fate is unknown: it may or may not
	// have been applied (it timed out or aborted mid-protocol, or the
	// connection died with the request in flight). Read-only operations
	// never carry this class — having no effects, their server and
	// connection failures take ErrUnavailable and their deadline
	// expiries ErrTimeout — so callers only ever face the at-least-once
	// decision for updates, and retrying one after ErrUncertain accepts
	// it.
	ErrUncertain = errors.New("client: operation fate uncertain")

	// ErrTimeout means the operation's deadline expired — the caller's
	// context deadline, or the configured WithRequestTimeout fallback.
	// Errors matching ErrTimeout also match context.DeadlineExceeded.
	// An update whose deadline struck after its request was already on
	// the wire additionally matches ErrUncertain: the deadline killed
	// the wait, not necessarily the operation.
	ErrTimeout = errors.New("client: deadline exceeded")

	// ErrBusy means every attempt was shed by server admission control
	// (StatusBusy): the cluster is overloaded, and the operation provably
	// was not applied — the server refused it before executing any of it,
	// so retrying any operation, against any replica, is safe. The client
	// already retried with exponential backoff within its budget; a
	// caller seeing ErrBusy should back off further before trying again
	// rather than tighten its retry loop.
	ErrBusy = errors.New("client: server busy")

	// ErrTypeMismatch means a typed handle read an object holding a
	// different CRDT type (e.g. Counter.Value on an OR-Set key),
	// detected client-side when decoding the queried state. The
	// server-side twin — a mutation applied to an object of another type
	// — surfaces as a *StatusError with StatusFailed. Retrying cannot
	// succeed; use a handle of the key's actual type.
	ErrTypeMismatch = errors.New("client: crdt type mismatch")
)

// StatusError is a non-OK response from a server, carrying the wire
// status code and the server's message verbatim.
//
// A *StatusError matches (errors.Is) the sentinel of its retry class:
// ErrUnavailable for StatusUnavailable, ErrUncertain for StatusUncertain,
// ErrBusy for StatusBusy
// — except that a StatusUncertain answer to a read-only operation (a
// server predating the read-only rule of docs/PROTOCOL.md §2.5 may send
// one) matches ErrUnavailable instead: a read has no fate to be
// uncertain about, and the status and message stay verbatim for
// inspection. StatusBadRequest, StatusFailed, and unknown future codes
// are terminal and match no retry sentinel.
type StatusError struct {
	Status Status // wire status code (docs/PROTOCOL.md §2.5)
	Msg    string // server's diagnostic message

	// readOnly marks responses to effect-free operations (queries,
	// admin commands), set by the client when it builds the error.
	readOnly bool
}

// Error implements error.
func (e *StatusError) Error() string {
	return fmt.Sprintf("client: server %s: %s", e.Status, e.Msg)
}

// Is maps the status onto the package's retry-class sentinels, so
// errors.Is(err, ErrUnavailable) works on server-reported statuses.
func (e *StatusError) Is(target error) bool {
	switch target {
	case ErrUnavailable:
		return e.Status == StatusUnavailable || (e.readOnly && e.Status == StatusUncertain)
	case ErrUncertain:
		return e.Status == StatusUncertain && !e.readOnly
	case ErrBusy:
		return e.Status == StatusBusy
	}
	return false
}
