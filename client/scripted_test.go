package client_test

// Client-behaviour matrix against a scripted flaky server: the tests here
// pin down the client's contract when the *server* misbehaves — stuck in
// "unavailable", speaking garbage, or answering with every status code
// the protocol defines — without any real cluster behind it.

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/wire"
)

// scriptedServer accepts client-protocol connections and answers every
// decodable request via the reply function. reply returns the raw frame
// body to send back (it need not be a decodable response — that is the
// point), or nil to send nothing.
type scriptedServer struct {
	ln    net.Listener
	reply func(req *wire.Request) []byte

	conns  atomic.Int32 // connections accepted so far
	closed atomic.Int32 // connections that reached EOF/error

	wg sync.WaitGroup
}

func startScripted(t *testing.T, reply func(req *wire.Request) []byte) *scriptedServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &scriptedServer{ln: ln, reply: reply}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.conns.Add(1)
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				defer conn.Close()
				defer s.closed.Add(1)
				br := bufio.NewReader(conn)
				for {
					frame, err := wire.ReadFrame(br)
					if err != nil {
						return
					}
					req, err := wire.DecodeRequest(frame)
					if err != nil {
						return
					}
					body := s.reply(req)
					if body == nil {
						continue
					}
					if err := wire.WriteFrame(conn, body); err != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		s.wg.Wait()
	})
	return s
}

func (s *scriptedServer) addr() string { return s.ln.Addr().String() }

// statusReply builds a well-formed non-OK response echoing the request.
func statusReply(req *wire.Request, status byte, msg string) []byte {
	return (&wire.Response{Op: req.Op | wire.RespBit, ID: req.ID, Status: status, Msg: msg}).Encode()
}

// TestRetryHonoursCancellation: a server stuck answering "unavailable"
// entitles the client to retry indefinitely within its budget — but the
// caller's context cancellation must cut the retry loop short, promptly,
// with an error matching context.Canceled.
func TestRetryHonoursCancellation(t *testing.T) {
	var served atomic.Int32
	s := startScripted(t, func(req *wire.Request) []byte {
		served.Add(1)
		return statusReply(req, wire.StatusUnavailable, "scripted: permanently refusing")
	})

	c, err := client.New([]string{s.addr()},
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1 << 20, Backoff: 10 * time.Millisecond}),
		client.WithRequestTimeout(-1)) // no fallback deadline: cancellation must do the work
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- c.Counter("k").Inc(ctx, 1) }()

	// Let a few retries happen, then cancel mid-loop.
	deadline := time.Now().Add(5 * time.Second)
	for served.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if served.Load() < 3 {
		t.Fatal("server saw no retries")
	}
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled retry loop returned %v, want context.Canceled", err)
		}
		if errors.Is(err, client.ErrTimeout) {
			t.Fatalf("cancellation misreported as timeout: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop ignored cancellation")
	}
	// The retry loop must stop consuming the server after cancellation.
	settled := served.Load()
	time.Sleep(50 * time.Millisecond)
	if served.Load() > settled+1 {
		t.Fatalf("server still being retried after cancellation (%d → %d)", settled, served.Load())
	}
}

// TestNoReuseAfterDecodeError: a response the client cannot decode kills
// the connection — nothing correlated over it can be trusted — so the
// next attempt must arrive on a freshly dialed connection, and the read-
// only operation must still succeed end-to-end via its retry.
func TestNoReuseAfterDecodeError(t *testing.T) {
	var requests atomic.Int32
	s := startScripted(t, func(req *wire.Request) []byte {
		if requests.Add(1) == 1 {
			return []byte{0xff, 0xfe, 0xfd} // undecodable response body
		}
		return (&wire.Response{Op: req.Op | wire.RespBit, ID: req.ID, Status: wire.StatusOK, Payload: []byte("pong")}).Encode()
	})

	c, err := client.New([]string{s.addr()},
		client.WithPool(1), // one slot: reuse would be visible immediately
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(context.Background()); err != nil {
		t.Fatalf("ping through a garbage first response: %v", err)
	}
	if got := s.conns.Load(); got != 2 {
		t.Fatalf("server saw %d connections, want 2 (poisoned conn must not be reused)", got)
	}
	// The poisoned connection must have been closed by the client, not
	// parked in the pool.
	deadline := time.Now().Add(5 * time.Second)
	for s.closed.Load() < 1 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if s.closed.Load() < 1 {
		t.Fatal("client kept the undecodable connection open")
	}
}

// TestConnFailureClassSplitsByOpKind: a connection that dies with
// requests in flight leaves an update's fate unknown (ErrUncertain) but
// a read simply unserved (ErrUnavailable) — the client-side mirror of
// the server's read-only failure classification.
func TestConnFailureClassSplitsByOpKind(t *testing.T) {
	// Every response is garbage, so every attempt ends in a dead
	// connection after the request was written.
	s := startScripted(t, func(req *wire.Request) []byte { return []byte{0xff, 0xfe} })
	c, err := client.New([]string{s.addr()},
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	err = c.Ping(ctx) // read-only: retried, exhausted, provably unserved
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("read over dying connections: %v, want ErrUnavailable", err)
	}
	if errors.Is(err, client.ErrUncertain) {
		t.Fatalf("read over dying connections %v claims ErrUncertain", err)
	}

	err = c.Counter("k").Inc(ctx, 1) // update: fate unknown, no retry
	if !errors.Is(err, client.ErrUncertain) {
		t.Fatalf("update over dying connection: %v, want ErrUncertain", err)
	}
	if errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("update over dying connection %v claims ErrUnavailable", err)
	}
}

// TestUncertainStatusReadReclassified: a server answering a read-only
// operation "uncertain" (permitted for servers predating PROTOCOL.md's
// read-only rule) must not leak the update-only ErrUncertain class to
// the caller — an exhausted effect-free read is provably unserved.
func TestUncertainStatusReadReclassified(t *testing.T) {
	s := startScripted(t, func(req *wire.Request) []byte {
		return statusReply(req, wire.StatusUncertain, "legacy: fate unknown")
	})
	c, err := client.New([]string{s.addr()},
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 2, Backoff: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	_, err = c.Keys(context.Background())
	if !errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("read exhausted on uncertain responses: %v, want ErrUnavailable", err)
	}
	if errors.Is(err, client.ErrUncertain) {
		t.Fatalf("read exhausted on uncertain responses %v claims ErrUncertain", err)
	}
	// The server's response stays inspectable verbatim: the wire status
	// is still "uncertain", only the retry class is remapped.
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != client.StatusUncertain || se.Msg != "legacy: fate unknown" {
		t.Fatalf("reclassified read error %v lost its StatusError", err)
	}
}

// TestInFlightTimeoutIsUncertain: a deadline that fires with the request
// frame already written cannot prove the update unapplied — the error
// must match ErrUncertain on top of ErrTimeout, or a caller treating
// plain timeouts as not-applied would double-apply on re-submission.
// Reads carry no such obligation: they have no effects.
func TestInFlightTimeoutIsUncertain(t *testing.T) {
	// A server that consumes requests and never answers: every request
	// is accepted onto the wire, then black-holed.
	s := startScripted(t, func(req *wire.Request) []byte { return nil })
	c, err := client.New([]string{s.addr()},
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	err = c.Counter("k").Inc(ctx, 1)
	if !errors.Is(err, client.ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("in-flight update timeout %v does not match ErrTimeout", err)
	}
	if !errors.Is(err, client.ErrUncertain) {
		t.Fatalf("in-flight update timeout %v does not match ErrUncertain", err)
	}

	rctx, rcancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer rcancel()
	_, err = c.Counter("k").Value(rctx)
	if !errors.Is(err, client.ErrTimeout) {
		t.Fatalf("read timeout %v does not match ErrTimeout", err)
	}
	if errors.Is(err, client.ErrUncertain) {
		t.Fatalf("read timeout %v claims ErrUncertain for an effect-free operation", err)
	}
}

// TestStatusErrorRoundTripsEveryCode: every non-OK status code of
// docs/PROTOCOL.md §2.5 — and an unknown future code, which rule §2.7/3
// says clients must treat as terminal — must surface as a *StatusError
// carrying the exact code and message, mapped onto the right retry-class
// sentinel.
func TestStatusErrorRoundTripsEveryCode(t *testing.T) {
	var status atomic.Int32
	s := startScripted(t, func(req *wire.Request) []byte {
		return statusReply(req, byte(status.Load()), "scripted message")
	})
	c, err := client.New([]string{s.addr()},
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1})) // surface the first answer
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	cases := []struct {
		code        client.Status
		name        string
		unavailable bool
		uncertain   bool
		busy        bool
	}{
		{client.StatusUnavailable, "unavailable", true, false, false},
		{client.StatusUncertain, "uncertain", false, true, false},
		{client.StatusBadRequest, "bad request", false, false, false},
		{client.StatusFailed, "error", false, false, false},
		{client.StatusBusy, "busy", false, false, true},
		{client.Status(9), "status 9", false, false, false}, // unknown: terminal
	}
	for _, tc := range cases {
		status.Store(int32(tc.code))
		err := c.Counter("k").Inc(ctx, 1)
		if err == nil {
			t.Fatalf("status %d: update succeeded", tc.code)
		}
		var se *client.StatusError
		if !errors.As(err, &se) {
			t.Fatalf("status %d: error %v carries no StatusError", tc.code, err)
		}
		if se.Status != tc.code || se.Msg != "scripted message" {
			t.Fatalf("status %d round-tripped as {%d %q}", tc.code, se.Status, se.Msg)
		}
		if se.Status.String() != tc.name {
			t.Errorf("Status(%d).String() = %q, want %q", tc.code, se.Status, tc.name)
		}
		if got := errors.Is(err, client.ErrUnavailable); got != tc.unavailable {
			t.Errorf("status %d: Is(ErrUnavailable) = %v, want %v", tc.code, got, tc.unavailable)
		}
		if got := errors.Is(err, client.ErrUncertain); got != tc.uncertain {
			t.Errorf("status %d: Is(ErrUncertain) = %v, want %v", tc.code, got, tc.uncertain)
		}
		if got := errors.Is(err, client.ErrBusy); got != tc.busy {
			t.Errorf("status %d: Is(ErrBusy) = %v, want %v", tc.code, got, tc.busy)
		}
	}
}

// TestBusyStatusRetriesThenSucceeds: StatusBusy is a retry-anywhere
// class for every operation kind — the server sheds at admission, before
// executing anything, so even an update may be blindly resubmitted. A
// server that sheds a few times and then admits must cost the caller
// nothing but latency.
func TestBusyStatusRetriesThenSucceeds(t *testing.T) {
	var served atomic.Int32
	s := startScripted(t, func(req *wire.Request) []byte {
		if served.Add(1) <= 3 {
			return statusReply(req, wire.StatusBusy, "scripted: shedding")
		}
		return (&wire.Response{Op: req.Op | wire.RespBit, ID: req.ID, Status: wire.StatusOK, RoundTrips: 1}).Encode()
	})
	c, err := client.New([]string{s.addr()},
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 8, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Counter("k").Inc(context.Background(), 1); err != nil {
		t.Fatalf("update through a temporarily busy server: %v", err)
	}
	if got := served.Load(); got != 4 {
		t.Fatalf("server saw %d requests, want 4 (3 sheds + 1 success)", got)
	}
}

// TestBusyExhaustedSurfacesErrBusy: a server shedding every attempt must
// surface as ErrBusy — and only ErrBusy: not uncertain (nothing
// executed) and not unavailable (the caller's remedies differ: back off
// versus fail over).
func TestBusyExhaustedSurfacesErrBusy(t *testing.T) {
	s := startScripted(t, func(req *wire.Request) []byte {
		return statusReply(req, wire.StatusBusy, "scripted: permanently shedding")
	})
	c, err := client.New([]string{s.addr()},
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	err = c.Counter("k").Inc(context.Background(), 1)
	if !errors.Is(err, client.ErrBusy) {
		t.Fatalf("err = %v, want ErrBusy", err)
	}
	if errors.Is(err, client.ErrUncertain) || errors.Is(err, client.ErrUnavailable) {
		t.Fatalf("busy error %v bleeds into another retry class", err)
	}
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != client.StatusBusy || se.Msg != "scripted: permanently shedding" {
		t.Fatalf("busy error %v lost its StatusError", err)
	}
}
