// Package client is the public Go client for clusters served by
// crdtsmr's network layer (cmd/crdtsmrd, internal/server): it speaks the
// client frame protocol of docs/PROTOCOL.md and exposes the same typed
// handles as the in-process facade — counters, observed-remove sets,
// last-writer-wins registers — plus raw linearizable queries and admin
// commands. External modules import it as crdtsmr/client; docs/CLIENT.md
// is the guided tour.
//
// # Connections
//
// A Client holds a small pool of TCP connections per server address
// (WithPool) and pipelines requests: every request gets a
// connection-unique ID, many can be in flight on one connection, and a
// demultiplexing read loop matches responses (which arrive in completion
// order) back to their waiters. Connections are dialed lazily — through
// a custom Dialer if WithDialer is set — and a connection that fails or
// delivers an undecodable frame is discarded, never reused; its pool
// slot redials on next use.
//
// # Contexts and deadlines
//
// Every operation takes a context.Context first and runs under its
// deadline and cancellation, retries included. When the caller's context
// has no deadline, the WithRequestTimeout fallback (default 10 s)
// applies, so no operation can block forever by accident. A deadline
// expiry returns an error matching both ErrTimeout and
// context.DeadlineExceeded.
//
// # Errors and retries
//
// Failures are classified by what the caller may safely do next, and the
// client's own failover (tunable with WithRetryPolicy) follows the same
// rules it exposes (docs/PROTOCOL.md §2.5):
//
//   - ErrUnavailable — provably not applied; the client retries any
//     operation against the next address. Dial failures and the server
//     or connection failures of read-only operations (which have no
//     effects to be uncertain about) carry this class too; only
//     deadline expiry takes a read out of it (ErrTimeout).
//   - ErrUncertain — an update's fate is unknown (server timeout/abort,
//     or a connection that died with the update in flight); never
//     auto-retried, because re-sending may double-apply. Callers that
//     retry an update after ErrUncertain accept at-least-once
//     semantics.
//   - *StatusError — every non-OK server response, carrying the wire
//     status code; StatusBadRequest and StatusFailed are terminal.
//   - ErrTypeMismatch — a typed handle read an object of a different
//     CRDT type; terminal.
//
// All of the above are matched with errors.Is / errors.As; see
// errors.go for the exact mapping.
package client
