package client_test

import (
	"context"
	"fmt"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
	"crdtsmr/internal/transport"
)

// Example connects a network client to a served 3-replica cluster: the
// replicas replicate over an in-process mesh here, but the client path —
// frames, pooling, pipelining, typed handles — is the same TCP stack a
// cmd/crdtsmrd deployment serves. External modules import the client as
// crdtsmr/client and need nothing else.
func Example() {
	// Cluster side: three replicas and a network server per replica.
	mesh := transport.NewMesh(transport.WithSeed(1))
	defer mesh.Close()
	members := []transport.NodeID{"n1", "n2", "n3"}
	cl, err := cluster.New(mesh, cluster.Config{
		Members:            members,
		Initial:            crdt.NewGCounter(),
		InitialForKey:      server.TypedKeyInitial(crdt.TypeGCounter),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
	})
	if err != nil {
		panic(err)
	}
	defer cl.Close()
	var addrs []string
	for _, id := range members {
		srv, err := server.Start(cl.Node(id), "127.0.0.1:0", server.Options{})
		if err != nil {
			panic(err)
		}
		defer srv.Close()
		addrs = append(addrs, srv.Addr())
	}

	// Client side: a pooled, pipelining client that fails over between
	// the listed replicas. Retry/pooling behaviour is tuned with
	// functional options; the context bounds each operation.
	c, err := client.New(addrs,
		client.WithPool(2),
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 4}))
	if err != nil {
		panic(err)
	}
	defer c.Close()
	ctx := context.Background()

	ctr := c.Counter("views")
	for i := 0; i < 4; i++ {
		if err := ctr.Inc(ctx, 1); err != nil {
			panic(err)
		}
	}
	v, err := ctr.Value(ctx) // linearizable read over the network
	if err != nil {
		panic(err)
	}

	set := c.Set("or-set/sessions") // typed by the key-prefix convention
	if err := set.Add(ctx, "alice"); err != nil {
		panic(err)
	}
	members2, err := set.Elements(ctx)
	if err != nil {
		panic(err)
	}

	fmt.Println(v, members2)
	// Output: 4 [alice]
}
