package client

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"crdtsmr/internal/wire"
)

// errConnFailed wraps connection-level failures after an update's
// request was written — the response is gone but the update may have
// been executed, which is exactly the ErrUncertain contract. Read-only
// operations take the ErrUnavailable class on the same failure instead:
// they have no effects, so "not served" is provable (the same split the
// server applies to its own fate-class failures).
var errConnFailed = fmt.Errorf("%w: connection failed", ErrUncertain)

// errNotSent wraps failures that provably precede the write (the pooled
// connection was already dead), so any operation may retry elsewhere —
// which is the ErrUnavailable contract, like a dial failure.
var errNotSent = fmt.Errorf("%w: request not sent", ErrUnavailable)

// errBusyConn marks a connection the server refused at admission with the
// busy-close handshake (one StatusBusy response on request ID 0, then
// close; docs/PROTOCOL.md §2.5). The server read nothing on it, so even a
// request already written is provably unexecuted — the ErrBusy class,
// safe to retry anywhere after backing off.
var errBusyConn = fmt.Errorf("%w: connection refused at admission", ErrBusy)

// errInFlight marks a context expiry that struck after the request frame
// was written: the response will never be read, so an update's fate is
// unknown and do() must add the ErrUncertain classification on top of
// the timeout/cancellation one.
var errInFlight = errors.New("client: context done with request in flight")

// Client is a pooled, pipelining client for one cluster. It is safe for
// concurrent use; typed handles share the client's pool. Create one with
// New and release it with Close.
//
// The endpoint set is dynamic: SetAddrs (or RefreshMembers, which asks
// the cluster) reconciles the pools against a new address list, so a
// long-lived client follows the cluster through reconfigurations.
type Client struct {
	cfg  config
	next atomic.Uint64 // round-robin address cursor

	mu     sync.Mutex
	pools  []*pool
	closed bool
}

// New returns a client for the given cluster addresses (the replicas'
// client-facing ports). Connections are dialed lazily on first use;
// operations start at a round-robin-chosen address and fail over to the
// others per the retry policy.
func New(addrs []string, opts ...Option) (*Client, error) {
	if len(addrs) == 0 {
		return nil, errors.New("client: no server addresses")
	}
	cfg := defaultConfig(addrs)
	for _, o := range opts {
		o(&cfg)
	}
	c := &Client{cfg: cfg}
	for _, addr := range addrs {
		c.pools = append(c.pools, newPool(addr, cfg))
	}
	return c, nil
}

// Close tears down every pooled connection. In-flight requests fail with
// a connection error.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	pools := c.pools
	c.mu.Unlock()
	for _, p := range pools {
		p.close()
	}
	return nil
}

// Addrs returns the current endpoint addresses, in pool order.
func (c *Client) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, len(c.pools))
	for i, p := range c.pools {
		out[i] = p.addr
	}
	return out
}

// SetAddrs reconciles the endpoint set against addrs: pools for retained
// addresses keep their connections, new addresses get fresh (lazily
// dialed) pools, and pools for removed addresses are closed — their
// connections are torn down, never leaked, and operations holding one
// fail over to a surviving endpoint. Duplicate addresses collapse to
// one pool.
func (c *Client) SetAddrs(addrs []string) error {
	if len(addrs) == 0 {
		return errors.New("client: no server addresses")
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	keep := make(map[string]*pool, len(c.pools))
	for _, p := range c.pools {
		keep[p.addr] = p
	}
	var next []*pool
	seen := make(map[string]bool, len(addrs))
	var removed []*pool
	for _, addr := range addrs {
		if seen[addr] {
			continue
		}
		seen[addr] = true
		if p, ok := keep[addr]; ok {
			next = append(next, p)
			delete(keep, addr)
		} else {
			next = append(next, newPool(addr, c.cfg))
		}
	}
	for _, p := range keep {
		removed = append(removed, p)
	}
	c.pools = next
	c.mu.Unlock()
	for _, p := range removed {
		p.close()
	}
	return nil
}

// snapshotPools returns the current pool list, or ErrClosed after Close.
// The slice is immutable once returned (SetAddrs replaces, never
// mutates), so callers may index it without the lock.
func (c *Client) snapshotPools() ([]*pool, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	return c.pools, nil
}

// ctxErr classifies a context failure: deadline expiry additionally
// matches ErrTimeout, so callers can distinguish "took too long" from
// their own cancellation without inspecting the context themselves.
func ctxErr(ctx context.Context, lastErr error) error {
	err := ctx.Err()
	if errors.Is(err, context.DeadlineExceeded) {
		err = fmt.Errorf("%w: %w", ErrTimeout, err)
	}
	if lastErr != nil {
		return fmt.Errorf("%w (last attempt: %v)", err, lastErr)
	}
	return err
}

// do runs one request with retries. retryInFlight permits retrying after
// failures that leave the operation's fate unknown (safe for reads and
// admin commands, not for updates).
func (c *Client) do(ctx context.Context, req *wire.Request, retryInFlight bool) (*wire.Response, error) {
	if _, err := c.snapshotPools(); err != nil {
		return nil, err
	}

	if _, ok := ctx.Deadline(); !ok && c.cfg.requestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.requestTimeout)
		defer cancel()
	}

	// The cursor spreads operations across addresses; each attempt
	// re-snapshots the pool list so a concurrent SetAddrs takes effect
	// mid-retry (failing over onto endpoints that still exist). Reduce the
	// cursor modulo the pool count while still in uint64, so the int
	// conversion can never go negative (32-bit platforms).
	start := c.next.Add(1)
	var lastErr error
	for attempt := 0; attempt < c.cfg.retry.MaxAttempts; attempt++ {
		if attempt > 0 {
			// Capped exponential backoff with jitter (RetryPolicy.delay):
			// under overload the retry pressure must shrink, not hold
			// steady, or shed requests return as a synchronized storm.
			select {
			case <-time.After(c.cfg.retry.delay(attempt)):
			case <-ctx.Done():
				return nil, ctxErr(ctx, lastErr)
			}
		}
		pools, err := c.snapshotPools()
		if err != nil {
			return nil, err
		}
		p := pools[int((start+uint64(attempt))%uint64(len(pools)))]
		cn, err := p.get(ctx)
		if err != nil {
			if errors.Is(err, ErrClosed) {
				if _, serr := c.snapshotPools(); serr != nil {
					// Racing Client.Close: every further attempt is doomed,
					// so fail now instead of burning the retry budget.
					return nil, serr
				}
				// The pool was closed because SetAddrs removed its endpoint
				// (stale member list), not because the client shut down.
				// Nothing was sent; retry on a current endpoint.
				lastErr = fmt.Errorf("%w: endpoint %s removed", ErrUnavailable, p.addr)
				continue
			}
			if ctx.Err() != nil {
				return nil, ctxErr(ctx, err)
			}
			// Nothing was sent; always safe to try the next address.
			lastErr = err
			continue
		}
		resp, err := cn.roundtrip(ctx, req)
		if err != nil {
			if ctx.Err() != nil {
				cerr := ctxErr(ctx, err)
				// Was the frame already on the wire when the context fired?
				// errInFlight marks the common case; a connection failure
				// that is neither pre-write (errNotSent) nor a local size
				// rejection also happened post-write. Either way an update
				// may still be applied, so the caller must additionally
				// learn the fate is unknown.
				inFlight := errors.Is(err, errInFlight) ||
					(!errors.Is(err, errNotSent) && !errors.Is(err, wire.ErrFrameTooLarge))
				if !retryInFlight && inFlight {
					cerr = fmt.Errorf("%w: %w", ErrUncertain, cerr)
				}
				return nil, cerr
			}
			if errors.Is(err, wire.ErrFrameTooLarge) {
				// Terminal everywhere: every replica enforces the same limit.
				return nil, fmt.Errorf("client: request exceeds frame limit: %w", err)
			}
			if errors.Is(err, errNotSent) {
				// The connection was dead before the frame was written:
				// like a dial failure, safe to retry any operation.
				lastErr = err
				continue
			}
			if errors.Is(err, ErrBusy) {
				// Busy-close handshake: the server refused the whole
				// connection at admission and read nothing on it, so the
				// operation provably did not execute — retry anywhere
				// (the next attempt's backoff paces it).
				lastErr = err
				continue
			}
			if !retryInFlight {
				return nil, fmt.Errorf("%w: %v", errConnFailed, err)
			}
			// A read-only operation on a died connection was simply not
			// served — effect-free, so provably not applied.
			lastErr = fmt.Errorf("%w: connection failed: %v", ErrUnavailable, err)
			continue
		}
		if resp.Status == byte(StatusOK) {
			return resp, nil
		}
		// retryInFlight doubles as "read-only": for those, a
		// StatusUncertain answer takes the ErrUnavailable class (see
		// StatusError.Is) — a read has no fate to be uncertain about.
		lastErr = &StatusError{Status: Status(resp.Status), Msg: resp.Msg, readOnly: retryInFlight}
		switch resp.Status {
		case byte(StatusUnavailable):
			continue // provably not applied: retry anywhere
		case byte(StatusBusy):
			// Shed at admission, provably not applied: retry anywhere —
			// after the growing backoff, which is what keeps a shedding
			// server from drowning in its own retries.
			continue
		case byte(StatusUncertain):
			if retryInFlight {
				continue
			}
			return nil, lastErr
		default:
			return nil, lastErr // terminal
		}
	}
	return nil, fmt.Errorf("client: %d attempts exhausted: %w", c.cfg.retry.MaxAttempts, lastErr)
}

// --- connection pool ---

type pool struct {
	addr string
	cfg  config

	mu     sync.Mutex
	conns  []*conn // fixed-size slots, nil or dead until (re)dialed
	rr     uint64
	closed bool
}

func newPool(addr string, cfg config) *pool {
	return &pool{addr: addr, cfg: cfg, conns: make([]*conn, cfg.connsPerAddr)}
}

// get returns a live connection from the pool, dialing the slot if its
// connection is absent or dead.
func (p *pool) get(ctx context.Context) (*conn, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, ErrClosed
	}
	slot := int(p.rr % uint64(len(p.conns)))
	p.rr++
	if cn := p.conns[slot]; cn != nil && !cn.isDead() {
		p.mu.Unlock()
		return cn, nil
	}
	p.mu.Unlock()

	dialer := p.cfg.dialer
	if dialer == nil {
		dialer = &net.Dialer{}
	}
	dctx, cancel := context.WithTimeout(ctx, p.cfg.dialTimeout)
	nc, err := dialer.DialContext(dctx, "tcp", p.addr)
	cancel()
	if err != nil {
		// A failed dial provably sent nothing, so it carries the
		// ErrUnavailable class: safe to retry anything, anywhere — and an
		// operation that exhausts its budget this way (cluster down)
		// surfaces as ErrUnavailable to the caller.
		return nil, fmt.Errorf("%w: dial %s: %v", ErrUnavailable, p.addr, err)
	}
	cn := newConn(nc)

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		cn.fail(ErrClosed)
		return nil, ErrClosed
	}
	if existing := p.conns[slot]; existing != nil && !existing.isDead() {
		// Lost a dial race; keep the winner.
		cn.fail(errors.New("client: duplicate dial"))
		return existing, nil
	}
	p.conns[slot] = cn
	return cn, nil
}

func (p *pool) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for _, cn := range p.conns {
		if cn != nil {
			cn.fail(ErrClosed)
		}
	}
}

// --- one pipelined connection ---

type conn struct {
	nc net.Conn

	wmu sync.Mutex // serializes frame writes
	bw  *bufio.Writer

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *wire.Response
	err     error // non-nil once dead
}

func newConn(nc net.Conn) *conn {
	c := &conn{
		nc:      nc,
		bw:      bufio.NewWriter(nc),
		pending: make(map[uint64]chan *wire.Response),
	}
	go c.readLoop()
	return c
}

func (c *conn) isDead() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err != nil
}

// fail marks the connection dead and unblocks every pending request. A
// dead connection is never handed out again: the pool redials its slot.
func (c *conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		_ = c.nc.Close()
		for id, ch := range c.pending {
			delete(c.pending, id)
			close(ch)
		}
	}
	c.mu.Unlock()
}

func (c *conn) readLoop() {
	br := bufio.NewReader(c.nc)
	for {
		frame, err := wire.ReadFrame(br)
		if err != nil {
			c.fail(fmt.Errorf("client: read: %w", err))
			return
		}
		resp, err := wire.DecodeResponse(frame)
		if err != nil {
			// A peer speaking garbage is a connection-level error: no
			// response on this conn can be trusted to correlate.
			c.fail(fmt.Errorf("client: decode response: %w", err))
			return
		}
		if resp.ID == 0 && resp.Status == byte(StatusBusy) {
			// The busy-close handshake: request IDs start at 1, so ID 0
			// addresses the connection itself — the server refused it at
			// admission, before reading anything, and is about to close
			// it. Fail every pending request with the retry-anywhere
			// busy class rather than the uncertain one a bare close
			// would imply.
			c.fail(errBusyConn)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
		}
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// roundtrip sends req (assigning it a connection-unique ID) and waits for
// the matching response. Concurrent roundtrips on one conn pipeline.
func (c *conn) roundtrip(ctx context.Context, req *wire.Request) (*wire.Response, error) {
	ch := make(chan *wire.Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %v", errNotSent, err)
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	r := *req
	r.ID = id
	c.wmu.Lock()
	err := wire.WriteFrame(c.bw, r.Encode())
	if err == nil {
		err = c.bw.Flush()
	}
	c.wmu.Unlock()
	if err != nil {
		if errors.Is(err, wire.ErrFrameTooLarge) {
			// Local size check, nothing written: the request is bad, the
			// connection is fine — don't kill other callers' pipelines.
			c.mu.Lock()
			delete(c.pending, id)
			c.mu.Unlock()
			return nil, err
		}
		c.fail(fmt.Errorf("client: write: %w", err))
		return nil, err
	}

	select {
	case resp, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return nil, err
		}
		return resp, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return nil, fmt.Errorf("%w: %w", errInFlight, ctx.Err())
	}
}
