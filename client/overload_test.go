package client_test

// The overload scenario: far more client concurrency than a small
// cluster's admission limits allow, all planes squeezed at once — the
// connection cap (busy-close handshakes), the server-wide in-flight cap
// (StatusBusy sheds), the per-connection pipelining cap, and the replica
// links' byte budgets. The system's obligation under that load is
// degradation, not failure: every admitted operation completes, the shed
// ones retry with backoff and eventually land, every worker makes
// progress, the replica wire never wedges, and the full recorded history
// stays per-key linearizable.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/checker"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/server"
	"crdtsmr/internal/transport"
)

// startOverloadCluster runs n replicas with deliberately small admission
// limits and budgeted replica links, returning the servers so the test
// can read the shed counters.
func startOverloadCluster(t *testing.T, n int, opts server.Options) (addrs []string, servers []*server.Server, cl *cluster.Cluster) {
	t.Helper()
	mesh := transport.NewMesh(transport.WithSeed(23))
	ids := make([]transport.NodeID, n)
	for i := range ids {
		ids[i] = transport.NodeID(fmt.Sprintf("n%d", i+1))
	}
	cl, err := cluster.New(mesh, cluster.Config{
		Members:            ids,
		Initial:            crdt.NewGCounter(),
		InitialForKey:      server.TypedKeyInitial(crdt.TypeGCounter),
		Options:            core.DefaultOptions(),
		RetransmitInterval: 20 * time.Millisecond,
		LinkBudget:         1 << 20, // 1 MiB/s: present on the hot path, generous enough not to stall
	})
	if err != nil {
		mesh.Close()
		t.Fatal(err)
	}
	for _, id := range ids {
		srv, err := server.Start(cl.Node(id), "127.0.0.1:0", opts)
		if err != nil {
			t.Fatal(err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}
	t.Cleanup(func() {
		for _, srv := range servers {
			_ = srv.Close()
		}
		cl.Close()
		mesh.Close()
	})
	return addrs, servers, cl
}

func TestOverloadScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second overload scenario")
	}
	const (
		replicas         = 3
		maxConns         = 6 // per server; the steady workload holds 4
		maxInFlight      = 4 // per connection
		maxTotalInFlight = 8 // per server; the steady workload offers up to 16
		clientsPerServer = 4
		workersPerClient = 4 // 48 workers total, pipelining over 12 connections
		opsPerWorker     = 10
		oneShotProbes    = 24 // short-lived conns racing the 2 spare slots
	)
	addrs, servers, _ := startOverloadCluster(t, replicas, server.Options{
		RequestTimeout:   10 * time.Second,
		MaxInFlight:      maxInFlight,
		MaxConns:         maxConns,
		MaxTotalInFlight: maxTotalInFlight,
	})
	keys := []string{"obj/0", "obj/1", "obj/2", "obj/3"}
	hist := checker.NewKeyedHistory()
	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()

	// The steady workload: per server, 4 single-connection clients each
	// driving 4 pipelined workers — 16 offered in-flight against an
	// admission limit of 8, so the server must shed, and the workers'
	// backoff must absorb it. Every completed operation is recorded.
	var wg sync.WaitGroup
	var incs [4]atomic.Int64 // completed increments per key
	var slowest atomic.Int64 // worst single-op latency, nanoseconds
	for s := 0; s < replicas; s++ {
		for i := 0; i < clientsPerServer; i++ {
			c, err := client.New([]string{addrs[s]},
				client.WithPool(1),
				client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 50, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}),
				client.WithRequestTimeout(30*time.Second))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			for w := 0; w < workersPerClient; w++ {
				keyIdx := (s*clientsPerServer*workersPerClient + i*workersPerClient + w) % len(keys)
				wg.Add(1)
				go func(c *client.Client, keyIdx int) {
					defer wg.Done()
					key := keys[keyIdx]
					ctr := c.Counter(key)
					h := hist.For(key)
					for op := 0; op < opsPerWorker; op++ {
						start := time.Now()
						if op%3 == 2 {
							id := h.Begin(checker.OpRead)
							v, err := ctr.Value(ctx)
							if err != nil {
								h.Discard(id)
								t.Errorf("read %s under overload: %v", key, err)
								return
							}
							h.End(id, v)
						} else {
							id := h.Begin(checker.OpInc)
							if err := ctr.Inc(ctx, 1); err != nil {
								t.Errorf("inc %s under overload: %v", key, err)
								return
							}
							h.End(id, 0)
							incs[keyIdx].Add(1)
						}
						if d := int64(time.Since(start)); d > slowest.Load() {
							slowest.Store(d)
						}
					}
				}(c, keyIdx)
			}
		}
	}

	// One-shot probes racing the two spare connection slots of server 0:
	// exercised both ways, some get the busy-close handshake (counted
	// below), and those that exhaust their budget must surface ErrBusy —
	// never an uncertain fate, since a refused connection executed
	// nothing. Successful probe reads are recorded like any other.
	var probeBusy atomic.Int64
	for p := 0; p < oneShotProbes; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			c, err := client.New([]string{addrs[0]},
				client.WithPool(1),
				client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}),
				client.WithRequestTimeout(30*time.Second))
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			key := keys[p%len(keys)]
			h := hist.For(key)
			id := h.Begin(checker.OpRead)
			v, err := c.Counter(key).Value(ctx)
			if err != nil {
				h.Discard(id)
				if errors.Is(err, client.ErrBusy) {
					probeBusy.Add(1)
					return
				}
				if errors.Is(err, client.ErrUncertain) {
					t.Errorf("refused probe read claims an uncertain fate: %v", err)
				}
				t.Errorf("probe read failed outside the busy class: %v", err)
				return
			}
			h.End(id, v)
		}(p)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Admission control must actually have engaged on both tiers.
	var shedReqs, shedConns uint64
	for _, srv := range servers {
		shedReqs += srv.ShedRequests()
		shedConns += srv.ShedConns()
	}
	if shedReqs == 0 {
		t.Error("no request was ever shed server-wide: the overload never overloaded")
	}
	if shedConns == 0 && probeBusy.Load() == 0 {
		t.Error("no connection was ever refused: the conn cap never engaged")
	}
	t.Logf("shed: %d requests, %d conns; %d probes exhausted as ErrBusy; slowest op %v",
		shedReqs, shedConns, probeBusy.Load(), time.Duration(slowest.Load()))

	// Degraded means bounded: under ~6× admission overload no operation —
	// retries, backoff, and sheds included — may take anywhere near the
	// request timeout. (Healthy ops run in single-digit milliseconds.)
	if worst := time.Duration(slowest.Load()); worst > 15*time.Second {
		t.Errorf("slowest operation took %v: overload degraded to unbounded latency", worst)
	}

	// Convergence and linearizability: a fresh, unconstrained client must
	// read exactly the recorded increments on every key via every server,
	// and the whole multi-client history must check out per key.
	final, err := client.New(addrs,
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 30, Backoff: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	for keyIdx, key := range keys {
		h := hist.For(key)
		id := h.Begin(checker.OpRead)
		v, err := final.Counter(key).Value(ctx)
		if err != nil {
			h.Discard(id)
			t.Fatalf("final read of %s: %v", key, err)
		}
		h.End(id, v)
		if want := uint64(incs[keyIdx].Load()); v != want {
			t.Errorf("final value of %s = %d, want %d", key, v, want)
		}
	}
	if err := checker.CheckKeyedLinearizable(hist); err != nil {
		t.Fatalf("overload history is not linearizable: %v", err)
	}
}
