package client

import (
	"context"
	"math/rand"
	"net"
	"time"
)

// RetryPolicy bounds the client's automatic failover. The client retries
// an operation only when doing so is safe: always after ErrUnavailable,
// ErrBusy, and dial failures (nothing was applied), and additionally
// after ErrUncertain and mid-flight connection failures for read-only
// operations (queries and admin commands).
//
// The delay before retry n doubles from Backoff up to MaxBackoff, with
// equal jitter (half the delay fixed, half uniformly random) so that a
// fleet of clients shed together by an overloaded server does not retry
// together as a synchronized storm.
type RetryPolicy struct {
	// MaxAttempts caps tries per operation, first attempt included,
	// across addresses. 0 means len(addrs) + 1.
	MaxAttempts int
	// Backoff is the base delay before the first retry. 0 means 5 ms.
	Backoff time.Duration
	// MaxBackoff caps the exponential growth. 0 means 100 ms; when
	// Backoff alone is set higher than the cap, the cap follows it (the
	// delay then stays fixed at Backoff, jittered).
	MaxBackoff time.Duration
}

// delay returns the sleep before retry attempt n (n ≥ 1): the base
// doubled n-1 times, capped, with equal jitter.
func (p RetryPolicy) delay(n int) time.Duration {
	limit := p.MaxBackoff
	if limit < p.Backoff {
		limit = p.Backoff
	}
	d := p.Backoff
	for i := 1; i < n && d < limit; i++ {
		d *= 2
	}
	if d > limit {
		d = limit
	}
	if d <= time.Nanosecond {
		return d
	}
	half := d / 2
	return half + time.Duration(rand.Int63n(int64(d-half)+1))
}

// Dialer opens client connections. *net.Dialer implements it; supply a
// custom one with WithDialer to route connections through proxies,
// in-process listeners, or test fixtures.
type Dialer interface {
	DialContext(ctx context.Context, network, address string) (net.Conn, error)
}

type config struct {
	dialTimeout    time.Duration
	requestTimeout time.Duration
	retry          RetryPolicy
	connsPerAddr   int
	dialer         Dialer
}

func defaultConfig(addrs []string) config {
	return config{
		dialTimeout:    2 * time.Second,
		requestTimeout: 10 * time.Second,
		retry: RetryPolicy{
			MaxAttempts: len(addrs) + 1,
			Backoff:     5 * time.Millisecond,
			MaxBackoff:  100 * time.Millisecond,
		},
		connsPerAddr: 2,
	}
}

// Option configures a Client.
type Option func(*config)

// WithPool sets the connection pool size per address. Requests pipeline,
// so a small pool serves many concurrent callers. Default 2.
func WithPool(connsPerAddr int) Option {
	return func(c *config) {
		if connsPerAddr > 0 {
			c.connsPerAddr = connsPerAddr
		}
	}
}

// WithRetryPolicy tunes failover. Zero fields keep their defaults
// (MaxAttempts len(addrs)+1, Backoff 5 ms, MaxBackoff 100 ms);
// MaxAttempts 1 disables retries entirely.
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *config) {
		if p.MaxAttempts > 0 {
			c.retry.MaxAttempts = p.MaxAttempts
		}
		if p.Backoff > 0 {
			c.retry.Backoff = p.Backoff
		}
		if p.MaxBackoff > 0 {
			c.retry.MaxBackoff = p.MaxBackoff
		}
	}
}

// WithDialer replaces the connection dialer (default: a net.Dialer
// bounded by the dial timeout). The dial timeout still applies: the
// context passed to d carries it as a deadline.
func WithDialer(d Dialer) Option {
	return func(c *config) {
		if d != nil {
			c.dialer = d
		}
	}
}

// WithDialTimeout bounds one connection attempt. Default 2 s.
func WithDialTimeout(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.dialTimeout = d
		}
	}
}

// WithRequestTimeout sets the fallback per-operation deadline applied
// only when the caller's context has none. Default 10 s; pass a negative
// value to disable the fallback and let deadline-free contexts wait
// indefinitely.
func WithRequestTimeout(d time.Duration) Option {
	return func(c *config) {
		if d != 0 {
			c.requestTimeout = d
		}
	}
}
