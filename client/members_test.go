package client

// White-box tests for the dynamic endpoint set: the pool-reconciliation
// paths that black-box tests cannot reach deterministically, in
// particular an operation holding a pool snapshot from before a
// concurrent SetAddrs removed one of its endpoints.

import (
	"bufio"
	"context"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"crdtsmr/internal/wire"
)

// startPongServer answers every decodable admin request with "pong" and
// returns the listen address.
func startPongServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				br := bufio.NewReader(conn)
				for {
					frame, err := wire.ReadFrame(br)
					if err != nil {
						return
					}
					req, err := wire.DecodeRequest(frame)
					if err != nil {
						return
					}
					resp := &wire.Response{
						Op:      req.Op | wire.RespBit,
						ID:      req.ID,
						Status:  wire.StatusOK,
						Payload: []byte("pong"),
					}
					if wire.WriteFrame(conn, resp.Encode()) != nil {
						return
					}
				}
			}()
		}
	}()
	t.Cleanup(func() {
		_ = ln.Close()
		wg.Wait()
	})
	return ln.Addr().String()
}

// TestRemovedEndpointPoolRetriesElsewhere: an operation that lands on a
// pool closed by endpoint removal (not by Client.Close) must fail over
// to a surviving endpoint instead of returning ErrClosed — the pool's
// closure only proves this endpoint left the member list.
func TestRemovedEndpointPoolRetriesElsewhere(t *testing.T) {
	dead := startPongServer(t)
	live := startPongServer(t)
	c, err := New([]string{dead, live}, WithRequestTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping before removal: %v", err)
	}

	// Simulate the race SetAddrs cannot lose deterministically from the
	// outside: the operation's pool snapshot still contains the removed
	// endpoint's pool, already closed.
	c.mu.Lock()
	removed := c.pools[0]
	c.mu.Unlock()
	removed.close()

	// Round-robin guarantees some of these land on the closed pool first.
	for i := 0; i < 6; i++ {
		if err := c.Ping(ctx); err != nil {
			t.Fatalf("ping %d with a removed-endpoint pool in the set: %v", i, err)
		}
	}

	// After Close, the same ErrClosed from a pool is terminal again.
	_ = c.Close()
	if err := c.Ping(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("ping after Close = %v, want ErrClosed", err)
	}
}

// TestDialExhaustionUnavailable: a client whose whole endpoint list is
// stale (every address refuses connections) must classify the exhausted
// operation ErrUnavailable — nothing was ever sent — never ErrUncertain.
func TestDialExhaustionUnavailable(t *testing.T) {
	var addrs []string
	for i := 0; i < 2; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, ln.Addr().String())
		_ = ln.Close() // address now refuses connections
	}
	c, err := New(addrs,
		WithRequestTimeout(5*time.Second),
		WithDialTimeout(200*time.Millisecond),
		WithRetryPolicy(RetryPolicy{MaxAttempts: 3, Backoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// An update is the strict case: ErrUncertain would forbid blind
	// retry, and a stale endpoint list must not cause that.
	err = c.Counter("k").Inc(context.Background(), 1)
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("update over dead endpoints = %v, want ErrUnavailable", err)
	}
	if errors.Is(err, ErrUncertain) {
		t.Fatalf("update over dead endpoints also matches ErrUncertain: %v", err)
	}
}

// TestSetAddrsReconciliation: retained addresses keep their pools (and
// connections), removed ones close, duplicates collapse.
func TestSetAddrsReconciliation(t *testing.T) {
	a := startPongServer(t)
	b := startPongServer(t)
	c, err := New([]string{a, b}, WithRequestTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	for i := 0; i < 4; i++ { // touch both pools so both hold live conns
		if err := c.Ping(ctx); err != nil {
			t.Fatal(err)
		}
	}

	c.mu.Lock()
	keptPool, removedPool := c.pools[1], c.pools[0]
	c.mu.Unlock()

	if err := c.SetAddrs([]string{b, b}); err != nil {
		t.Fatal(err)
	}
	if got := c.Addrs(); len(got) != 1 || got[0] != b {
		t.Fatalf("Addrs after SetAddrs = %v, want [%s]", got, b)
	}
	c.mu.Lock()
	samePool := c.pools[0] == keptPool
	c.mu.Unlock()
	if !samePool {
		t.Fatal("retained address did not keep its pool")
	}
	removedPool.mu.Lock()
	if !removedPool.closed {
		removedPool.mu.Unlock()
		t.Fatal("removed address's pool was not closed")
	}
	for _, cn := range removedPool.conns {
		if cn != nil && !cn.isDead() {
			removedPool.mu.Unlock()
			t.Fatal("removed pool leaked a live connection")
		}
	}
	removedPool.mu.Unlock()

	if err := c.Ping(ctx); err != nil {
		t.Fatalf("ping after reconciliation: %v", err)
	}
	if err := c.SetAddrs(nil); err == nil {
		t.Fatal("SetAddrs(nil) succeeded; an empty endpoint set must be refused")
	}
}
