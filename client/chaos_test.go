package client_test

// Replication-aware chaos test: a 5-node cluster whose replica mesh is
// split, healed, re-split along a different line, and healed again while
// concurrent clients work several keys through the serving layer. Every
// completed operation lands in a keyed history checked with the per-key
// linearizability checker — the paper's guarantee must survive minority
// isolation, not just clean runs — and the minority side must answer
// reads with the protocol's "unavailable" status (provably safe to retry
// anywhere) and updates with "uncertain" (fate unknown until the
// partition heals). The checker itself is self-tested at the end by
// injecting a deliberately stale read and requiring a violation report.

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/checker"
	"crdtsmr/internal/core"
	"crdtsmr/internal/transport"
)

// workload runs one writer and one reader per key against the given
// server addresses, recording every completed operation. It returns the
// number of increments recorded per key. Phase clients are closed when
// the phase ends, so stale pools never accumulate across partitions.
func workload(t *testing.T, hist *checker.KeyedHistory, addrs, keys []string, opsEach int) map[string]int {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	var clients []*client.Client
	defer func() {
		for _, c := range clients {
			_ = c.Close()
		}
	}()
	for _, key := range keys {
		key := key
		newPhaseClient := func() *client.Client {
			c, err := client.New(addrs,
				client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 4 * len(addrs), Backoff: 2 * time.Millisecond}))
			if err != nil {
				t.Fatal(err)
			}
			clients = append(clients, c)
			return c
		}
		writer, reader := newPhaseClient(), newPhaseClient()
		h := hist.For(key)
		wg.Add(2)
		go func() {
			defer wg.Done()
			ctr := writer.Counter(key)
			for i := 0; i < opsEach; i++ {
				id := h.Begin(checker.OpInc)
				if err := ctr.Inc(ctx, 1); err != nil {
					// The increment's fate is unknown; the history stays
					// sound because the op is left open, but the test has
					// already failed — a quorum was reachable.
					t.Errorf("inc %s: %v", key, err)
					return
				}
				h.End(id, 0)
			}
		}()
		go func() {
			defer wg.Done()
			ctr := reader.Counter(key)
			for i := 0; i < opsEach; i++ {
				id := h.Begin(checker.OpRead)
				v, err := ctr.Value(ctx)
				if err != nil {
					h.Discard(id) // reads have no effects; discarding is sound
					t.Errorf("read %s: %v", key, err)
					return
				}
				h.End(id, v)
			}
		}()
	}
	wg.Wait()
	incs := make(map[string]int, len(keys))
	for _, key := range keys {
		incs[key] = opsEach
	}
	return incs
}

// TestChaosPartitionHealLinearizable is the partition sweep: healthy →
// partition {n1,n2,n3}|{n4,n5} → heal → partition {n3,n4,n5}|{n1,n2} →
// heal, with the workload pinned to whichever side holds a quorum and the
// isolated minority probed for its error surface. It runs with delta
// state transfer on: the digest caches and fallback paths must survive
// partitions, not just clean runs (partitioned peers miss MERGEs, so
// their baselines go stale and the MERGE-NACK → full-resend path is
// exactly what a heal exercises).
func TestChaosPartitionHealLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos test")
	}
	const (
		replicas       = 5
		opsEach        = 8
		requestTimeout = 500 * time.Millisecond
	)
	cc := startServedClusterMode(t, replicas, 7, requestTimeout, core.TransferDelta)
	n := cc.ids
	keys := []string{"obj/0", "obj/1", "obj/2"}
	hist := checker.NewKeyedHistory()
	totals := make(map[string]int)
	record := func(m map[string]int) {
		for k, v := range m {
			totals[k] += v
		}
	}

	// Phase 0: healthy cluster, clients spread over every server.
	record(workload(t, hist, cc.addrsOf(n...), keys, opsEach))

	// Phase 1: split {n1,n2,n3} | {n4,n5}; only the majority side can
	// serve, so the recorded workload goes through it.
	cc.mesh.Partition([]transport.NodeID{n[0], n[1], n[2]}, []transport.NodeID{n[3], n[4]})
	record(workload(t, hist, cc.addrsOf(n[0], n[1], n[2]), keys, opsEach))
	probeMinority(t, cc.addrs[n[3]], keys[0], "probe/p1")

	// Heal and work through every server again: the rejoined minority
	// must catch up and serve linearizable values.
	cc.mesh.Heal()
	record(workload(t, hist, cc.addrsOf(n...), keys, opsEach))

	// Phase 2: move the partition line — the old minority is now in the
	// majority, and n1 (which served phase 1) is isolated.
	cc.mesh.Partition([]transport.NodeID{n[2], n[3], n[4]}, []transport.NodeID{n[0], n[1]})
	record(workload(t, hist, cc.addrsOf(n[2], n[3], n[4]), keys, opsEach))
	probeMinority(t, cc.addrs[n[0]], keys[1], "probe/p2")

	// Final heal: every replica must converge; read each key once
	// through every server and record those reads too.
	cc.mesh.Heal()
	record(workload(t, hist, cc.addrsOf(n...), keys, opsEach))
	for _, id := range n {
		c, err := client.New([]string{cc.addrs[id]},
			client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 8, Backoff: 5 * time.Millisecond}))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		for _, key := range keys {
			h := hist.For(key)
			opID := h.Begin(checker.OpRead)
			v, err := c.Counter(key).Value(ctx)
			if err != nil {
				h.Discard(opID)
				t.Fatalf("final read of %s via %s: %v", key, id, err)
			}
			h.End(opID, v)
			if v != uint64(totals[key]) {
				t.Errorf("final read of %s via %s = %d, want %d", key, id, v, totals[key])
			}
		}
		cancel()
	}

	// The recorded multi-client history must be per-key linearizable.
	wantOps := len(keys)*(5*2*opsEach) + replicas*len(keys)
	if got := hist.Ops(); got != wantOps {
		t.Fatalf("recorded %d completed ops, want %d", got, wantOps)
	}
	if err := checker.CheckKeyedLinearizable(hist); err != nil {
		t.Fatalf("history across partition/heal cycles is not linearizable: %v", err)
	}

	// Checker self-test: inject a deliberately stale read (value 0 after
	// all increments completed) and require the checker to flag it — a
	// checker that accepts anything would make the pass above worthless.
	h := hist.For(keys[0])
	stale := h.Begin(checker.OpRead)
	h.End(stale, 0)
	if err := checker.CheckKeyedLinearizable(hist); err == nil {
		t.Fatal("checker accepted an injected stale read")
	}
}

// leaseHits sums the lease fast-path counter across the given nodes.
func leaseHits(cc *servedCluster, ids ...transport.NodeID) uint64 {
	var sum uint64
	for _, id := range ids {
		sum += cc.cl.Node(id).Counters().LeaseHits
	}
	return sum
}

// TestChaosLeaseHolderPartition partitions the round-lease holder out of
// a 5-node cluster in the middle of a hot-key, read-heavy stream. The
// stream fails over to the surviving majority; every completed operation
// must stay per-key linearizable (a stale leased read served from the
// isolated holder would break it), and once the stream quiets down a
// survivor must be able to install its own lease — the invalidation on
// round steal (docs/PROTOCOL.md §5) must not wedge the fast path off
// forever.
func TestChaosLeaseHolderPartition(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos test")
	}
	const (
		replicas       = 5
		requestTimeout = 500 * time.Millisecond
		streamOps      = 120 // read-heavy: one increment per 8 operations
	)
	cc := startServedClusterMode(t, replicas, 13, requestTimeout, core.TransferDelta)
	n := cc.ids
	const key = "obj/hot"
	hist := checker.NewKeyedHistory()
	h := hist.For(key)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Phase 0: a client pinned to n1 works the hot key until n1 holds the
	// round lease and serves reads through it. The lease installs on the
	// first read whose quorum agrees on the round, so a handful of
	// read-after-write pairs suffices; the deadline is pure paranoia.
	pinned, err := client.New(cc.addrsOf(n[0]),
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 4, Backoff: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	ctr := pinned.Counter(key)
	acquired := time.Now().Add(15 * time.Second)
	for leaseHits(cc, n[0]) == 0 {
		if time.Now().After(acquired) {
			t.Fatal("n1 never acquired the lease")
		}
		id := h.Begin(checker.OpInc)
		if err := ctr.Inc(ctx, 1); err != nil {
			t.Fatalf("phase-0 inc: %v", err)
		}
		h.End(id, 0)
		id = h.Begin(checker.OpRead)
		v, err := ctr.Value(ctx)
		if err != nil {
			h.Discard(id)
			t.Fatalf("phase-0 read: %v", err)
		}
		h.End(id, v)
	}

	// The mid-stream workload runs through a failover client that knows
	// every server, lease holder first — so operations in flight when the
	// partition bites retry onto the survivors instead of failing.
	stream, err := client.New(cc.addrsOf(n...),
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 4 * replicas, Backoff: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		ctr := stream.Counter(key)
		for i := 0; i < streamOps; i++ {
			if i%8 == 7 {
				id := h.Begin(checker.OpInc)
				if err := ctr.Inc(ctx, 1); err != nil {
					// The increment raced the partition and its fate is
					// unknown; leaving the op open keeps the history sound.
					continue
				}
				h.End(id, 0)
				continue
			}
			id := h.Begin(checker.OpRead)
			v, err := ctr.Value(ctx)
			if err != nil {
				h.Discard(id) // reads have no effects; discarding is sound
				continue
			}
			h.End(id, v)
		}
	}()

	// Partition the lease holder mid-stream: {n2..n5} keep the quorum,
	// n1 — lease and all — is cut off.
	time.Sleep(150 * time.Millisecond)
	cc.mesh.Partition([]transport.NodeID{n[1], n[2], n[3], n[4]}, []transport.NodeID{n[0]})
	<-streamDone

	// A survivor must re-acquire the lease: reads pinned to n2 mint a
	// fresh round (invalidating the holder's lease everywhere reachable)
	// and, once the stream's rounds settle, install n2's own.
	survivor, err := client.New(cc.addrsOf(n[1]),
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 4, Backoff: 2 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer survivor.Close()
	ctr = survivor.Counter(key)
	base := leaseHits(cc, n[1], n[2], n[3], n[4])
	reacquired := time.Now().Add(15 * time.Second)
	for leaseHits(cc, n[1], n[2], n[3], n[4]) == base {
		if time.Now().After(reacquired) {
			t.Fatal("no survivor re-acquired the lease after the holder was partitioned away")
		}
		id := h.Begin(checker.OpRead)
		v, err := ctr.Value(ctx)
		if err != nil {
			h.Discard(id)
			t.Fatalf("survivor read: %v", err)
		}
		h.End(id, v)
	}

	// Heal and read the key once through every server — the rejoined
	// holder must serve the merged value, not a stale leased one.
	cc.mesh.Heal()
	for _, id := range n {
		c, err := client.New([]string{cc.addrs[id]},
			client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 8, Backoff: 5 * time.Millisecond}))
		if err != nil {
			t.Fatal(err)
		}
		opID := h.Begin(checker.OpRead)
		v, err := c.Counter(key).Value(ctx)
		if err != nil {
			h.Discard(opID)
			t.Fatalf("final read via %s: %v", id, err)
		}
		h.End(opID, v)
		_ = c.Close()
	}

	if err := checker.CheckKeyedLinearizable(hist); err != nil {
		t.Fatalf("history across the lease-holder partition is not linearizable: %v", err)
	}
}

// probeMinority asserts the error surface of a replica cut off from its
// quorum: reads (no effects, provably not served) come back matching
// ErrUnavailable so clients may blindly retry them anywhere, while
// updates — whose MERGE may have left the building before the partition
// bit — come back matching ErrUncertain, never ErrUnavailable.
func probeMinority(t *testing.T, addr, readKey, updateKey string) {
	t.Helper()
	c, err := client.New([]string{addr},
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	_, err = c.Counter(readKey).Value(ctx)
	if !errors.Is(err, client.ErrUnavailable) {
		t.Errorf("minority read: %v, want ErrUnavailable", err)
	}
	var se *client.StatusError
	if !errors.As(err, &se) || se.Status != client.StatusUnavailable {
		t.Errorf("minority read error %v carries no StatusError with StatusUnavailable", err)
	}

	// The update probe uses a key no recorded workload touches: its
	// increment may commit after the heal, which an "uncertain" answer
	// precisely permits.
	err = c.Counter(updateKey).Inc(ctx, 1)
	if !errors.Is(err, client.ErrUncertain) {
		t.Errorf("minority update: %v, want ErrUncertain", err)
	}
	if errors.Is(err, client.ErrUnavailable) {
		t.Error("minority update claimed ErrUnavailable (provably-not-applied) for an in-flight command")
	}
}
