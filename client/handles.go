package client

// Typed handles mirroring the facade's Counter/Set/Register API, plus raw
// queries and admin commands. Handles are cheap stateless views over the
// client's connection pool; create as many as convenient. Every method
// that performs I/O takes a context.Context first — the context's
// deadline (or the WithRequestTimeout fallback) bounds the operation,
// retries included.

import (
	"context"
	"encoding/binary"
	"fmt"
	"strings"

	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/wire"
)

// State is a CRDT payload: an element of a join semilattice, as returned
// by Query. It is the same type the root crdtsmr package exports, so
// states cross between the in-process facade and the network client
// without conversion.
type State = crdt.State

// LearnPath reports which protocol path served a linearizable read.
type LearnPath = core.LearnPath

const (
	// LearnConsistentQuorum: a quorum of ACKs carried equivalent states;
	// the read finished in one round trip.
	LearnConsistentQuorum = core.LearnConsistentQuorum
	// LearnVote: the proposer had to put the least upper bound to a vote
	// (two round trips).
	LearnVote = core.LearnVote
)

// QueryInfo describes how a linearizable read was served.
type QueryInfo struct {
	RoundTrips int
	Attempts   int
	Path       LearnPath
}

func uvarintArg(n uint64) []byte {
	return binary.AppendUvarint(nil, n)
}

func (c *Client) update(ctx context.Context, key, crdtType, mutation string, args ...[]byte) error {
	if len(args) > wire.MaxArgs {
		// Enforced here so the failure is a local error, not a silent
		// server-side connection drop on the undecodable frame.
		return fmt.Errorf("client: %d update operands exceeds wire.MaxArgs (%d)", len(args), wire.MaxArgs)
	}
	req := &wire.Request{Op: wire.OpUpdate, Key: key, CRDTType: crdtType, Mutation: mutation, Args: args}
	_, err := c.do(ctx, req, false)
	return err
}

// Query learns a linearizable state of the object stored under key. The
// payload type must be registered (all built-in types are).
func (c *Client) Query(ctx context.Context, key string) (State, QueryInfo, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpQuery, Key: key}, true)
	if err != nil {
		return nil, QueryInfo{}, err
	}
	st, err := crdt.Unmarshal(resp.State)
	if err != nil {
		return nil, QueryInfo{}, fmt.Errorf("client: decode state: %w", err)
	}
	info := QueryInfo{
		RoundTrips: int(resp.RoundTrips),
		Attempts:   int(resp.Attempts),
		Path:       LearnPath(resp.Path),
	}
	return st, info, nil
}

// Ping round-trips an admin frame to any reachable server.
func (c *Client) Ping(ctx context.Context) error {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpAdmin, Cmd: "ping"}, true)
	if err != nil {
		return err
	}
	if string(resp.Payload) != "pong" {
		return fmt.Errorf("client: unexpected ping reply %q", resp.Payload)
	}
	return nil
}

// Keys returns the object keys instantiated on the answering replica,
// sorted. Replicas may transiently disagree (keys instantiate lazily).
func (c *Client) Keys(ctx context.Context) ([]string, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpAdmin, Cmd: "keys"}, true)
	if err != nil {
		return nil, err
	}
	r := wire.NewReader(resp.Payload)
	n := r.Uvarint()
	// Cap the preallocation by the payload size (every key costs at least
	// one byte), so a corrupt count cannot panic or balloon the client.
	capHint := n
	if max := uint64(len(resp.Payload)); capHint > max {
		capHint = max
	}
	keys := make([]string, 0, capHint)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		keys = append(keys, r.Str())
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("client: decode keys: %w", err)
	}
	return keys, nil
}

// Member is one replica of the cluster's current configuration, as
// reported by the members admin command. Addr is the member's
// client-facing address, or "" when the answering server's registry has
// none for it.
type Member struct {
	ID   string
	Addr string
}

// decodeMembers parses a membership admin payload: epoch, then each
// member's ID and client address.
func decodeMembers(payload []byte) (uint64, []Member, error) {
	r := wire.NewReader(payload)
	epoch := r.Uvarint()
	n := r.Uvarint()
	capHint := n
	if max := uint64(len(payload)); capHint > max {
		capHint = max
	}
	members := make([]Member, 0, capHint)
	for i := uint64(0); i < n && r.Err() == nil; i++ {
		members = append(members, Member{ID: r.Str(), Addr: r.Str()})
	}
	if err := r.Err(); err != nil {
		return 0, nil, fmt.Errorf("client: decode members: %w", err)
	}
	return epoch, members, nil
}

// Members returns the configuration epoch and member list of the
// answering replica's cluster.
func (c *Client) Members(ctx context.Context) (uint64, []Member, error) {
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpAdmin, Cmd: "members"}, true)
	if err != nil {
		return 0, nil, err
	}
	return decodeMembers(resp.Payload)
}

// RefreshMembers asks the cluster for its current member list and
// reconciles the client's endpoint set against the advertised client
// addresses (SetAddrs): pools for removed members close, new members'
// pools dial lazily. Members without an advertised address are skipped;
// if no member advertises one, the endpoint set is left unchanged and an
// error is returned. Call it after a reconfiguration — or periodically —
// so a long-lived client never dials retired replicas forever.
func (c *Client) RefreshMembers(ctx context.Context) ([]Member, error) {
	_, members, err := c.Members(ctx)
	if err != nil {
		return nil, err
	}
	var addrs []string
	for _, m := range members {
		if m.Addr != "" {
			addrs = append(addrs, m.Addr)
		}
	}
	if len(addrs) == 0 {
		return members, fmt.Errorf("client: no member advertises a client address; endpoint set unchanged")
	}
	if err := c.SetAddrs(addrs); err != nil {
		return members, err
	}
	return members, nil
}

// MemberAdd proposes adding replica id to the cluster's member set, via
// whichever current member answers. meshAddr, when non-empty, is the
// joiner's replica-mesh address, registered with the answering server's
// transport before the reconfiguration (required when the transport did
// not know the joiner at boot); clientAddr, when non-empty, is recorded
// in the server's member registry so later RefreshMembers calls learn
// it. Returns the committed epoch and member list.
//
// The reconfiguration is an update, not a read: if the call fails with
// ErrUncertain the new configuration may or may not have committed —
// inspect Members before retrying.
func (c *Client) MemberAdd(ctx context.Context, id, meshAddr, clientAddr string) (uint64, []Member, error) {
	if id == "" || len(strings.Fields(id)) != 1 {
		return 0, nil, fmt.Errorf("client: bad member ID %q", id)
	}
	cmd := "member-add " + id
	if clientAddr != "" && meshAddr == "" {
		meshAddr = "-" // positional placeholder: "no mesh address"
	}
	if meshAddr != "" {
		cmd += " " + meshAddr
	}
	if clientAddr != "" {
		cmd += " " + clientAddr
	}
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpAdmin, Cmd: cmd}, false)
	if err != nil {
		return 0, nil, err
	}
	return decodeMembers(resp.Payload)
}

// MemberRemove proposes removing replica id from the cluster's member
// set. Like MemberAdd it is an update; an ErrUncertain failure leaves
// the outcome unknown. The removed replica keeps running — it just
// serves no quorums and refuses commands — until the operator stops it.
func (c *Client) MemberRemove(ctx context.Context, id string) (uint64, []Member, error) {
	if id == "" || len(strings.Fields(id)) != 1 {
		return 0, nil, fmt.Errorf("client: bad member ID %q", id)
	}
	resp, err := c.do(ctx, &wire.Request{Op: wire.OpAdmin, Cmd: "member-remove " + id}, false)
	if err != nil {
		return 0, nil, err
	}
	return decodeMembers(resp.Payload)
}

// Counter returns a typed handle on the G-Counter stored under key.
func (c *Client) Counter(key string) *Counter { return &Counter{c: c, key: key} }

// Counter is a client-side handle on a replicated G-Counter.
type Counter struct {
	c   *Client
	key string
}

// Inc increments the counter by n (linearizable, one protocol round trip).
func (h *Counter) Inc(ctx context.Context, n uint64) error {
	return h.c.update(ctx, h.key, crdt.TypeGCounter, wire.MutInc, uvarintArg(n))
}

// Value reads the counter, linearizably.
func (h *Counter) Value(ctx context.Context) (uint64, error) {
	st, _, err := h.c.Query(ctx, h.key)
	if err != nil {
		return 0, err
	}
	g, ok := st.(*crdt.GCounter)
	if !ok {
		return 0, fmt.Errorf("%w: payload of %q is %s, not a G-Counter", ErrTypeMismatch, h.key, st.TypeName())
	}
	return g.Value(), nil
}

// PNCounter returns a typed handle on the PN-Counter stored under key.
func (c *Client) PNCounter(key string) *PNCounter { return &PNCounter{c: c, key: key} }

// PNCounter is a client-side handle on a replicated PN-Counter.
type PNCounter struct {
	c   *Client
	key string
}

// Inc increments the counter by n.
func (h *PNCounter) Inc(ctx context.Context, n uint64) error {
	return h.c.update(ctx, h.key, crdt.TypePNCounter, wire.MutInc, uvarintArg(n))
}

// Dec decrements the counter by n.
func (h *PNCounter) Dec(ctx context.Context, n uint64) error {
	return h.c.update(ctx, h.key, crdt.TypePNCounter, wire.MutDec, uvarintArg(n))
}

// Value reads the counter, linearizably.
func (h *PNCounter) Value(ctx context.Context) (int64, error) {
	st, _, err := h.c.Query(ctx, h.key)
	if err != nil {
		return 0, err
	}
	p, ok := st.(*crdt.PNCounter)
	if !ok {
		return 0, fmt.Errorf("%w: payload of %q is %s, not a PN-Counter", ErrTypeMismatch, h.key, st.TypeName())
	}
	return p.Value(), nil
}

// Set returns a typed handle on the observed-remove set stored under key.
func (c *Client) Set(key string) *Set { return &Set{c: c, key: key} }

// Set is a client-side handle on a replicated OR-Set. The serving replica
// tags additions, so one handle is safe for concurrent use.
type Set struct {
	c   *Client
	key string
}

// Add inserts an element (add-wins on concurrent removal).
func (h *Set) Add(ctx context.Context, element string) error {
	return h.c.update(ctx, h.key, crdt.TypeORSet, wire.MutAdd, []byte(element))
}

// Remove deletes the element's observed additions.
func (h *Set) Remove(ctx context.Context, element string) error {
	return h.c.update(ctx, h.key, crdt.TypeORSet, wire.MutRemove, []byte(element))
}

// Elements reads the membership, linearizably.
func (h *Set) Elements(ctx context.Context) ([]string, error) {
	st, _, err := h.c.Query(ctx, h.key)
	if err != nil {
		return nil, err
	}
	set, ok := st.(*crdt.ORSet)
	if !ok {
		return nil, fmt.Errorf("%w: payload of %q is %s, not an OR-Set", ErrTypeMismatch, h.key, st.TypeName())
	}
	return set.Elements(), nil
}

// Register returns a typed handle on the last-writer-wins register stored
// under key.
func (c *Client) Register(key string) *Register { return &Register{c: c, key: key} }

// Register is a client-side handle on a replicated LWW-Register.
type Register struct {
	c   *Client
	key string
}

// Store writes the register. Concurrent writes resolve last-writer-wins
// by the serving replicas' wall clocks, replica ID as tie-breaker.
func (h *Register) Store(ctx context.Context, value string) error {
	return h.c.update(ctx, h.key, crdt.TypeLWWRegister, wire.MutSet, []byte(value))
}

// Load reads the register, linearizably. ok is false if the register was
// never written.
func (h *Register) Load(ctx context.Context) (value string, ok bool, err error) {
	st, _, err := h.c.Query(ctx, h.key)
	if err != nil {
		return "", false, err
	}
	reg, isReg := st.(*crdt.LWWRegister)
	if !isReg {
		return "", false, fmt.Errorf("%w: payload of %q is %s, not an LWW-Register", ErrTypeMismatch, h.key, st.TypeName())
	}
	val, ts, _ := reg.Value()
	return val, ts != 0, nil
}
