package client_test

// Crash/restart chaos: a 5-node durable cluster (every node snapshots to
// its own data dir) loses a minority to crashes mid-workload, gets them
// back via Restart — volatile state gone, keyspace rehydrated from disk —
// then survives a rolling restart of every node, all while concurrent
// clients work several keys over the real TCP serving path. Every
// completed operation lands in a keyed history checked with the per-key
// linearizability checker: the paper's guarantee must hold across
// process-death recovery, not just clean runs and partitions. Delta state
// transfer stays on, so the PR 4 digest caches must survive the
// Restart/ForgetPeer interplay too.

import (
	"context"
	"sync"
	"testing"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/checker"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/transport"
)

func TestChaosCrashRestartLinearizable(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos test")
	}
	const (
		replicas       = 5
		opsEach        = 6
		requestTimeout = 500 * time.Millisecond
	)
	cc := startServedClusterWith(t, replicas, 11, requestTimeout, func(cfg *cluster.Config) {
		cfg.StateTransfer = core.TransferDelta
		cfg.DataDir = t.TempDir()
	})
	n := cc.ids
	keys := []string{"obj/0", "obj/1", "obj/2"}
	hist := checker.NewKeyedHistory()
	totals := make(map[string]int)
	phases := 0
	record := func(m map[string]int) {
		phases++
		for k, v := range m {
			totals[k] += v
		}
	}
	restart := func(id transport.NodeID) {
		t.Helper()
		if err := cc.cl.Restart(id); err != nil {
			t.Fatalf("restart %s: %v", id, err)
		}
	}

	// Phase 0: healthy cluster, clients spread over every server.
	record(workload(t, hist, cc.addrsOf(n...), keys, opsEach))

	// Phase 1: crash the minority {n4,n5} while a workload is running
	// against the majority, then Restart them before the workload ends —
	// recovery happens mid-traffic, not in a quiet cluster.
	var wg sync.WaitGroup
	var phase1 map[string]int
	wg.Add(1)
	go func() {
		defer wg.Done()
		phase1 = workload(t, hist, cc.addrsOf(n[0], n[1], n[2]), keys, opsEach)
	}()
	cc.cl.Crash(n[3])
	cc.cl.Crash(n[4])
	restart(n[3])
	restart(n[4])
	wg.Wait()
	record(phase1)

	// The rejoined minority must serve linearizable values straight away.
	record(workload(t, hist, cc.addrsOf(n...), keys, opsEach))

	// Phase 2: rolling restart — every node in turn is crashed, the
	// remaining four carry a recorded workload, and the node comes back
	// from its snapshot dir before the next one goes down.
	for i, id := range n {
		cc.cl.Crash(id)
		others := make([]transport.NodeID, 0, replicas-1)
		for j, oid := range n {
			if j != i {
				others = append(others, oid)
			}
		}
		record(workload(t, hist, cc.addrsOf(others...), keys, opsEach))
		restart(id)
	}

	// Final phase through every server, then one read of every key via
	// every node individually: each must return the exact total.
	record(workload(t, hist, cc.addrsOf(n...), keys, opsEach))
	for _, id := range n {
		c, err := client.New([]string{cc.addrs[id]},
			client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 8, Backoff: 5 * time.Millisecond}))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		for _, key := range keys {
			h := hist.For(key)
			opID := h.Begin(checker.OpRead)
			v, err := c.Counter(key).Value(ctx)
			if err != nil {
				h.Discard(opID)
				t.Fatalf("final read of %s via %s: %v", key, id, err)
			}
			h.End(opID, v)
			if v != uint64(totals[key]) {
				t.Errorf("final read of %s via %s = %d, want %d", key, id, v, totals[key])
			}
		}
		cancel()
	}

	wantOps := len(keys)*(phases*2*opsEach) + replicas*len(keys)
	if got := hist.Ops(); got != wantOps {
		t.Fatalf("recorded %d completed ops, want %d", got, wantOps)
	}
	if err := checker.CheckKeyedLinearizable(hist); err != nil {
		t.Fatalf("history across crash/restart cycles is not linearizable: %v", err)
	}
}
