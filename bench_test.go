package crdtsmr

// Benchmark harness entry points, one per table/figure of the paper's
// evaluation (§4), plus the ablations called out in DESIGN.md. Each
// benchmark runs a scaled-down version of the corresponding experiment;
// cmd/bench runs the full parameterizable sweeps.
//
//	go test -bench=. -benchmem
//	go test -bench=Figure1 -benchtime=5x

import (
	"context"
	"fmt"
	"testing"
	"time"

	"crdtsmr/internal/bench"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/gla"
	"crdtsmr/internal/transport"
)

// benchNet uses a small emulated LAN delay; zero-delay runs measure only
// scheduler overhead and hide the protocols' round-trip differences.
func benchNet() bench.NetProfile {
	return bench.NetProfile{MinDelay: 20 * time.Microsecond, MaxDelay: 80 * time.Microsecond, Seed: 1}
}

func runPoint(b *testing.B, sys bench.System, clients int, readFraction float64) bench.Result {
	b.Helper()
	res := bench.Run(sys, bench.RunConfig{
		Clients:      clients,
		ReadFraction: readFraction,
		Duration:     400 * time.Millisecond,
		Warmup:       100 * time.Millisecond,
	})
	b.ReportMetric(res.Throughput, "req/s")
	b.ReportMetric(float64(res.ReadLat.P95.Microseconds()), "read-p95-µs")
	b.ReportMetric(float64(res.UpdateLat.P95.Microseconds()), "update-p95-µs")
	return res
}

// BenchmarkFigure1 reproduces the throughput comparison of Figure 1:
// systems × read mixes × client counts on three replicas.
func BenchmarkFigure1(b *testing.B) {
	systems := []struct {
		name  string
		build func() (bench.System, error)
	}{
		{"CRDTPaxos", func() (bench.System, error) { return bench.NewCRDTSystem(3, 0, benchNet()) }},
		{"CRDTPaxosBatched", func() (bench.System, error) { return bench.NewCRDTSystem(3, 5*time.Millisecond, benchNet()) }},
		{"Raft", func() (bench.System, error) { return bench.NewRaftSystem(3, benchNet()) }},
		{"MultiPaxos", func() (bench.System, error) { return bench.NewPaxosSystem(3, benchNet()) }},
	}
	for _, mix := range []float64{1.00, 0.95, 0.90, 0.50, 0.00} {
		for _, clients := range []int{1, 16, 64} {
			for _, spec := range systems {
				name := fmt.Sprintf("reads=%.0f%%/clients=%d/%s", mix*100, clients, spec.name)
				b.Run(name, func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						sys, err := spec.build()
						if err != nil {
							b.Fatal(err)
						}
						runPoint(b, sys, clients, mix)
						sys.Close()
					}
				})
			}
		}
	}
}

// BenchmarkFigure2 reproduces the tail-latency comparison of Figure 2:
// read/update p95 at 10 % updates across client counts.
func BenchmarkFigure2(b *testing.B) {
	for _, clients := range []int{1, 16, 64, 128} {
		b.Run(fmt.Sprintf("clients=%d/CRDTPaxos", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := bench.NewCRDTSystem(3, 0, benchNet())
				if err != nil {
					b.Fatal(err)
				}
				runPoint(b, sys, clients, 0.90)
				sys.Close()
			}
		})
		b.Run(fmt.Sprintf("clients=%d/CRDTPaxosBatched", clients), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sys, err := bench.NewCRDTSystem(3, 5*time.Millisecond, benchNet())
				if err != nil {
					b.Fatal(err)
				}
				runPoint(b, sys, clients, 0.90)
				sys.Close()
			}
		})
	}
}

// BenchmarkFigure3 reproduces the read round-trip distribution of
// Figure 3, reporting the cumulative percentage of reads finishing within
// one and two round trips (the paper's >97 % headline refers to the
// batched variant).
func BenchmarkFigure3(b *testing.B) {
	for _, batched := range []bool{false, true} {
		for _, clients := range []int{16, 64} {
			name := fmt.Sprintf("batching=%t/clients=%d", batched, clients)
			b.Run(name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					window := time.Duration(0)
					if batched {
						window = 5 * time.Millisecond
					}
					sys, err := bench.NewCRDTSystem(3, window, benchNet())
					if err != nil {
						b.Fatal(err)
					}
					res := bench.Run(sys, bench.RunConfig{
						Clients:      clients,
						ReadFraction: 0.90,
						Duration:     400 * time.Millisecond,
						Warmup:       100 * time.Millisecond,
					})
					sys.Close()
					cdf := res.ReadRTTs.CDF(15)
					b.ReportMetric(cdf[0], "%reads≤1RTT")
					b.ReportMetric(cdf[1], "%reads≤2RTT")
				}
			})
		}
	}
}

// BenchmarkFigure4 reproduces the node-failure experiment of Figure 4:
// p95 latency with a replica crashing mid-run, reported as the worst
// post-failure interval p95 (availability is continuous; only latency
// rises).
func BenchmarkFigure4(b *testing.B) {
	for _, batched := range []bool{false, true} {
		b.Run(fmt.Sprintf("batching=%t", batched), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				window := time.Duration(0)
				if batched {
					window = 5 * time.Millisecond
				}
				sys, err := bench.NewCRDTSystem(3, window, benchNet())
				if err != nil {
					b.Fatal(err)
				}
				res := bench.Run(sys, bench.RunConfig{
					Clients:      16,
					ReadFraction: 0.90,
					Duration:     800 * time.Millisecond,
					Warmup:       100 * time.Millisecond,
					Interval:     100 * time.Millisecond,
					FailAfter:    400 * time.Millisecond,
					FailReplica:  2,
				})
				sys.Close()
				var worstPost time.Duration
				postOps := 0
				for _, iv := range res.Timeline {
					if iv.Index >= 4 {
						postOps += iv.Ops
						if iv.ReadP95 > worstPost {
							worstPost = iv.ReadP95
						}
					}
				}
				if postOps == 0 {
					b.Fatal("no operations after failure: availability lost")
				}
				b.ReportMetric(float64(worstPost.Microseconds()), "post-failure-read-p95-µs")
				b.ReportMetric(float64(postOps), "post-failure-ops")
			}
		})
	}
}

// BenchmarkAblationGLAMessageGrowth quantifies why the paper excluded the
// Faleiro et al. GLA protocol from its evaluation: its coordination bytes
// grow with the command history, whereas CRDT Paxos's per-message overhead
// stays a single round (counter) regardless of history length.
func BenchmarkAblationGLAMessageGrowth(b *testing.B) {
	for _, history := range []int{10, 100, 1000} {
		b.Run(fmt.Sprintf("history=%d", history), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				members := []transport.NodeID{"n1", "n2", "n3"}
				reps := map[transport.NodeID]*gla.Replica{}
				for _, id := range members {
					rep, err := gla.NewReplica(id, members, nil)
					if err != nil {
						b.Fatal(err)
					}
					reps[id] = rep
				}
				type tagged struct {
					from transport.NodeID
					env  gla.Envelope
				}
				var pool []tagged
				pump := func() {
					for id, rep := range reps {
						for _, e := range rep.TakeOutbox() {
							pool = append(pool, tagged{from: id, env: e})
						}
					}
				}
				for c := 0; c < history; c++ {
					reps["n1"].ReceiveValue(fmt.Sprintf("cmd-%06d", c))
					pump()
					for len(pool) > 0 {
						msg := pool[0]
						pool = pool[1:]
						reps[msg.env.To].Deliver(msg.from, msg.env.Payload)
						pump()
					}
				}
				total := uint64(0)
				for _, rep := range reps {
					total += rep.BytesSent
				}
				b.ReportMetric(float64(total)/float64(history), "bytes/cmd")
			}
		})
	}
}

// BenchmarkAblationDeltaMerge compares full-state MERGE payloads against
// delta-mutation payloads (Almeida et al.), the future-work direction the
// paper cites for large CRDTs.
func BenchmarkAblationDeltaMerge(b *testing.B) {
	for _, replicas := range []int{3, 32, 256} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			c := crdt.NewGCounter()
			for i := 0; i < replicas; i++ {
				c = c.Inc(fmt.Sprintf("r%04d", i), uint64(i+1))
			}
			fullBytes, deltaBytes := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				full := c.Inc("r0000", 1)
				raw, err := crdt.Marshal(full)
				if err != nil {
					b.Fatal(err)
				}
				fullBytes = len(raw)
				delta := c.IncDelta("r0000", 1)
				rawDelta, err := crdt.Marshal(delta)
				if err != nil {
					b.Fatal(err)
				}
				deltaBytes = len(rawDelta)
			}
			b.ReportMetric(float64(fullBytes), "full-state-bytes")
			b.ReportMetric(float64(deltaBytes), "delta-bytes")
		})
	}
}

// BenchmarkAblationSeedPrepare measures the §3.2 option of seeding the
// first PREPARE with the proposer's local state versus the §3.6 default of
// sending nothing.
func BenchmarkAblationSeedPrepare(b *testing.B) {
	for _, seeded := range []bool{false, true} {
		b.Run(fmt.Sprintf("seeded=%t", seeded), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := core.DefaultOptions()
				opts.SeedPrepare = seeded
				sys, err := bench.NewCRDTSystemOpts(3, 0, benchNet(), opts)
				if err != nil {
					b.Fatal(err)
				}
				res := bench.Run(sys, bench.RunConfig{
					Clients:      16,
					ReadFraction: 0.50,
					Duration:     300 * time.Millisecond,
					Warmup:       50 * time.Millisecond,
				})
				sys.Close()
				b.ReportMetric(res.Throughput, "req/s")
			}
		})
	}
}

// BenchmarkUpdateLatency measures the single-operation update path end to
// end through the public API (one round trip by construction, §3.2).
func BenchmarkUpdateLatency(b *testing.B) {
	cl, err := NewLocalCluster(3, NewGCounter())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	ctr := cl.Counter("n1")
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ctr.Inc(ctx, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryLatency measures the conflict-free read path (learned by
// consistent quorum in one round trip).
func BenchmarkQueryLatency(b *testing.B) {
	cl, err := NewLocalCluster(3, NewGCounter())
	if err != nil {
		b.Fatal(err)
	}
	defer cl.Close()
	ctr := cl.Counter("n1")
	ctx := context.Background()
	if err := ctr.Inc(ctx, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctr.Value(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCRDTMerge measures raw payload merge cost for representative
// types (the protocol's hot path).
func BenchmarkCRDTMerge(b *testing.B) {
	gc := crdt.NewGCounter()
	for i := 0; i < 64; i++ {
		gc = gc.Inc(fmt.Sprintf("r%02d", i), 1)
	}
	or := crdt.NewORSet()
	for i := 0; i < 64; i++ {
		or = or.Add(fmt.Sprintf("e%02d", i), "a", uint64(i))
	}
	b.Run("GCounter64", func(b *testing.B) {
		other := gc.Inc("r00", 5)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := gc.Merge(other); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ORSet64", func(b *testing.B) {
		other := or.Add("extra", "b", 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := or.Merge(other); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCodec measures the wire codec for the G-Counter payload.
func BenchmarkCodec(b *testing.B) {
	gc := crdt.NewGCounter()
	for i := 0; i < 16; i++ {
		gc = gc.Inc(fmt.Sprintf("r%02d", i), uint64(i))
	}
	raw, err := crdt.Marshal(gc)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("Marshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := crdt.Marshal(gc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Unmarshal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := crdt.Unmarshal(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
}
