// Command bench regenerates the paper's evaluation figures (§4) against
// the Go reimplementation: throughput sweeps (Figure 1), tail latency
// (Figure 2), read round-trip distributions (Figure 3), and the
// node-failure timeline (Figure 4). Beyond the paper, -figure keys runs
// the sharded-store scaling sweep (aggregate throughput vs key count with
// a fixed per-key client load), -figure clients runs the served-store
// sweep: closed-loop clients driving the store through the real TCP
// client/server stack (crdtsmr/client, internal/server) with the replica
// mesh emulated, one throughput grid of clients × keyspace size, and
// -figure bytes runs the state-transfer sweep: replica-wire bytes per
// operation vs object size for the full/digest/delta -state-transfer
// modes, measured with transport byte counters (wall-clock independent),
// -figure lease measures the round-lease query fast path on a hot-key
// read-after-write session, -figure protocols races the paper's
// protocol against Multi-Paxos RSM, Raft RSM, and generalized lattice
// agreement on a shared keyed workload in virtual time (deterministic
// per seed; see internal/shootout), and -figure overload sweeps offered
// closed-loop load past the admission caps and reports goodput and p99
// completion latency with admission control on (StatusBusy sheds plus
// client backoff) and off (everything queues), and -figure shards
// measures the durable store's update throughput as persistence moves
// from the seed's serial one-Save-per-event loop to the asynchronous
// group-commit pipeline across event-loop shard counts, under an
// emulated per-write device flush, and -figure members runs a timeline
// across an online membership change (grow by a joiner, then remove a
// boot member mid-workload) with built-in stall and shed guards.
//
// The default scale finishes in minutes; raise -duration and -clients to
// approach the paper's 10-minute, 4096-client runs.
//
// Usage:
//
//	bench -figure all
//	bench -figure 1 -duration 10s -clients 1,8,64,512,4096
//	bench -figure 3 -batch 5ms
//	bench -figure keys -keys 1,4,16,64,256 -per-key 2
//	bench -figure clients -keys 1,4,16 -clients 8,64,256
//	bench -figure bytes -sizes 10,100,1000
//	bench -figure protocols -out .
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"crdtsmr/internal/bench"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		figure   = flag.String("figure", "all", "figure to regenerate: 1, 2, 3, 4, keys, clients, bytes, lease, protocols, overload, shards, members, or all")
		duration = flag.Duration("duration", 2*time.Second, "measurement duration per data point (paper: 10m)")
		warmup   = flag.Duration("warmup", 300*time.Millisecond, "warm-up excluded from statistics")
		clients  = flag.String("clients", "1,8,64,256", "comma-separated client sweep (paper: 1..4096)")
		batch    = flag.Duration("batch", 5*time.Millisecond, "batching window for the batched variant (paper: 5ms)")
		replicas = flag.Int("replicas", 3, "number of replicas (paper: 3)")
		minDelay = flag.Duration("min-delay", 50*time.Microsecond, "emulated per-message network delay, lower bound")
		maxDelay = flag.Duration("max-delay", 200*time.Microsecond, "emulated per-message network delay, upper bound")
		seed     = flag.Int64("seed", 1, "network RNG seed")
		keys     = flag.String("keys", "1,4,16,64", "comma-separated key counts for the sharded-store sweep (figure keys)")
		perKey   = flag.Int("per-key", 2, "closed-loop clients per key for the sharded-store sweep")
		sizes    = flag.String("sizes", "10,100,1000", "comma-separated or-set sizes for the bytes sweep (figure bytes)")
		byteOps  = flag.Int("byte-ops", 30, "operations per data point for the bytes sweep")
		outDir   = flag.String("out", "", "directory to write BENCH_<figure>.json records into (figures that emit them)")
	)
	flag.Parse()

	sweep, err := parseClients(*clients)
	if err != nil {
		return err
	}
	keySweep, err := parseClients(*keys)
	if err != nil {
		return err
	}
	sizeSweep, err := parseClients(*sizes)
	if err != nil {
		return err
	}
	scale := bench.Scale{
		Duration: *duration,
		Warmup:   *warmup,
		Clients:  sweep,
		Batch:    *batch,
		Replicas: *replicas,
		Net:      bench.NetProfile{MinDelay: *minDelay, MaxDelay: *maxDelay, Seed: *seed},
	}

	out := os.Stdout
	// saveFig persists a figure's machine-readable record when -out is
	// set; the text table already went to stdout either way.
	saveFig := func(fig *bench.FigureJSON) error {
		if *outDir == "" || fig == nil {
			return nil
		}
		if fig.GitSHA == "" {
			fig.GitSHA = gitHead()
		}
		path := filepath.Join(*outDir, "BENCH_"+fig.Figure+".json")
		if err := fig.WriteFile(path); err != nil {
			return err
		}
		fmt.Fprintln(out, "wrote", path)
		return nil
	}
	runOne := func(fig string) error {
		switch fig {
		case "1":
			return bench.Figure1(out, scale)
		case "2":
			return bench.Figure2(out, scale)
		case "3":
			_, err := bench.Figure3(out, scale, filterAtMost(sweep, 512))
			return err
		case "4":
			return bench.Figure4(out, scale, 64)
		case "keys":
			return bench.FigureKeys(out, scale, keySweep, *perKey)
		case "clients":
			return bench.FigureClients(out, scale, keySweep, sweep)
		case "bytes":
			return bench.FigureBytes(out, *replicas, sizeSweep, *byteOps)
		case "lease":
			fig, err := bench.FigureLease(out, scale)
			if err != nil {
				return err
			}
			return saveFig(fig)
		case "protocols":
			fig, err := bench.FigureProtocols(out, scale)
			if err != nil {
				return err
			}
			return saveFig(fig)
		case "overload":
			fig, err := bench.FigureOverload(out, scale)
			if err != nil {
				return err
			}
			return saveFig(fig)
		case "shards":
			fig, err := bench.FigureShards(out, scale)
			if err != nil {
				return err
			}
			return saveFig(fig)
		case "members":
			fig, err := bench.FigureMembers(out, scale, 64)
			if err != nil {
				return err
			}
			return saveFig(fig)
		default:
			return fmt.Errorf("unknown figure %q", fig)
		}
	}

	if *figure == "all" {
		for _, fig := range []string{"1", "2", "3", "4", "keys", "clients", "bytes", "lease", "protocols", "overload", "shards", "members"} {
			if err := runOne(fig); err != nil {
				return err
			}
			fmt.Fprintln(out)
		}
		return nil
	}
	return runOne(*figure)
}

// gitHead is the fallback revision stamp for `go run` builds, which
// carry no VCS build info.
func gitHead() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return string(bytes.TrimSpace(out))
}

func parseClients(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad count %q (want positive integers)", p)
		}
		out = append(out, n)
	}
	return out, nil
}

func filterAtMost(sweep []int, max int) []int {
	var out []int
	for _, n := range sweep {
		if n <= max {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = []int{16}
	}
	return out
}
