// Command crdtsmr runs a replica of a linearizable replicated G-Counter
// over TCP, or submits client operations to one.
//
// Start three replicas (separate terminals or machines):
//
//	crdtsmr serve -id n1 -listen 127.0.0.1:7701 -peers n1=127.0.0.1:7701,n2=127.0.0.1:7702,n3=127.0.0.1:7703
//	crdtsmr serve -id n2 -listen 127.0.0.1:7702 -peers ...
//	crdtsmr serve -id n3 -listen 127.0.0.1:7703 -peers ...
//
// Each replica also exposes a tiny line-oriented client port at
// listen+1000: "inc <n>" and "get" commands:
//
//	crdtsmr inc -addr 127.0.0.1:8701 -n 5
//	crdtsmr get -addr 127.0.0.1:8702
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"strconv"
	"strings"
	"time"

	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = serve(os.Args[2:])
	case "inc", "get":
		err = clientOp(os.Args[1], os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crdtsmr:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: crdtsmr serve|inc|get [flags]")
	os.Exit(2)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	id := fs.String("id", "", "replica ID (must appear in -peers)")
	listen := fs.String("listen", "", "replica listen address (host:port)")
	peersFlag := fs.String("peers", "", "comma-separated id=addr pairs for the full cluster")
	batch := fs.Duration("batch", 0, "batching window (0 disables; paper used 5ms)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *listen == "" || *peersFlag == "" {
		return fmt.Errorf("serve requires -id, -listen, and -peers")
	}
	peers := map[transport.NodeID]string{}
	var members []transport.NodeID
	for _, pair := range strings.Split(*peersFlag, ",") {
		kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad peer %q", pair)
		}
		peers[transport.NodeID(kv[0])] = kv[1]
		members = append(members, transport.NodeID(kv[0]))
	}

	node, err := cluster.NewNode(transport.NodeID(*id), cluster.Config{
		Members:       members,
		Initial:       crdt.NewGCounter(),
		Options:       core.DefaultOptions(),
		BatchInterval: *batch,
	}, func(nid transport.NodeID, h transport.Handler) transport.Conn {
		remote := map[transport.NodeID]string{}
		for p, a := range peers {
			if p != nid {
				remote[p] = a
			}
		}
		t, err := transport.NewTCP(nid, *listen, remote, h)
		if err != nil {
			fmt.Fprintln(os.Stderr, "crdtsmr:", err)
			os.Exit(1)
		}
		return t
	})
	if err != nil {
		return err
	}
	defer node.Close()

	clientAddr, err := clientPort(*listen)
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", clientAddr)
	if err != nil {
		return err
	}
	defer ln.Close()
	fmt.Printf("replica %s up: protocol %s, clients %s\n", *id, *listen, clientAddr)

	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		go handleClient(conn, node, *id)
	}
}

func handleClient(conn net.Conn, node *cluster.Node, id string) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		switch fields[0] {
		case "inc":
			n := uint64(1)
			if len(fields) > 1 {
				if v, err := strconv.ParseUint(fields[1], 10, 64); err == nil {
					n = v
				}
			}
			_, err := node.Update(ctx, func(s crdt.State) (crdt.State, error) {
				return s.(*crdt.GCounter).Inc(id, n), nil
			})
			if err != nil {
				fmt.Fprintln(conn, "err", err)
			} else {
				fmt.Fprintln(conn, "ok")
			}
		case "get":
			s, stats, err := node.Query(ctx)
			if err != nil {
				fmt.Fprintln(conn, "err", err)
			} else {
				fmt.Fprintf(conn, "%d rtts=%d path=%v\n", s.(*crdt.GCounter).Value(), stats.RoundTrips, stats.Path)
			}
		default:
			fmt.Fprintln(conn, "err unknown command")
		}
		cancel()
	}
}

func clientOp(op string, args []string) error {
	fs := flag.NewFlagSet(op, flag.ExitOnError)
	addr := fs.String("addr", "", "replica client address (replica port + 1000)")
	n := fs.Uint64("n", 1, "increment amount (inc only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("%s requires -addr", op)
	}
	conn, err := net.DialTimeout("tcp", *addr, 5*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	if op == "inc" {
		fmt.Fprintf(conn, "inc %d\n", *n)
	} else {
		fmt.Fprintln(conn, "get")
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return err
	}
	fmt.Print(reply)
	return nil
}

// clientPort derives the client-facing port: protocol port + 1000.
func clientPort(listen string) (string, error) {
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return "", err
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", err
	}
	return net.JoinHostPort(host, strconv.Itoa(p+1000)), nil
}
