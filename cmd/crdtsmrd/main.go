// Command crdtsmrd is the cluster daemon: it runs one replica of a
// linearizable CRDT keyspace — joining the replica mesh over TCP
// (internal/transport) and serving remote clients the frame protocol of
// docs/PROTOCOL.md (internal/server) — plus a small client CLI speaking
// that protocol through the public crdtsmr/client package.
//
// Start a 3-node cluster (separate terminals or machines):
//
//	crdtsmrd serve -id n1 -listen 127.0.0.1:7701 -peers n1=127.0.0.1:7701,n2=127.0.0.1:7702,n3=127.0.0.1:7703
//	crdtsmrd serve -id n2 -listen 127.0.0.1:7702 -peers n1=127.0.0.1:7701,n2=127.0.0.1:7702,n3=127.0.0.1:7703
//	crdtsmrd serve -id n3 -listen 127.0.0.1:7703 -peers n1=127.0.0.1:7701,n2=127.0.0.1:7702,n3=127.0.0.1:7703
//
// Each replica serves clients on -client-listen (default: the replica
// port + 1000). Any replica serves any key; keys whose first path
// segment names a CRDT type hold that type ("or-set/sessions",
// "lww-register/config"), all others hold the -payload type:
//
//	crdtsmrd inc  -addrs 127.0.0.1:8701 -key views -n 5
//	crdtsmrd get  -addrs 127.0.0.1:8702,127.0.0.1:8703 -key views
//	crdtsmrd add  -addrs 127.0.0.1:8701 -key or-set/sessions -elem alice
//	crdtsmrd set  -addrs 127.0.0.1:8702 -key lww-register/config -value v2
//	crdtsmrd keys -addrs 127.0.0.1:8703
//
// The client CLI accepts several -addrs and fails over between them, so
// any single replica may be down.
//
// With -data-dir, a replica snapshots every object's CRDT payload and
// consensus metadata to disk after each durable transition — log-free
// recovery per the paper: kill -9 the process, re-exec it with the same
// -data-dir, and it serves its pre-crash data (see the README's
// crash-recovery quickstart and docs/PROTOCOL.md §4 for the file format).
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"crdtsmr/client"
	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/persist"
	"crdtsmr/internal/server"
	"crdtsmr/internal/transport"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch cmd := os.Args[1]; cmd {
	case "serve":
		err = serve(os.Args[2:])
	case "inc", "dec", "get", "add", "remove", "set", "ping", "keys",
		"members", "member-add", "member-remove":
		err = clientOp(cmd, os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "crdtsmrd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: crdtsmrd <command> [flags]

server:
  serve    run one replica (joins the mesh, serves clients)

client (all take -addrs, a comma-separated server list):
  inc      increment a counter key        (-key, -n)
  dec      decrement a pn-counter/ key    (-key, -n)
  get      linearizable read of any key   (-key)
  add      add to an or-set/ key          (-key, -elem)
  remove   remove from an or-set/ key     (-key, -elem)
  set      write an lww-register/ key     (-key, -value)
  ping     round-trip a frame
  keys     list keys on the answering replica

membership (online reconfiguration; see docs/PROTOCOL.md §6):
  members        print the configuration epoch and member list
  member-add     add a replica          (-member, -mesh, -client-addr)
  member-remove  remove a replica       (-member)

To grow a cluster: start the joiner with 'serve -join' (it comes up
refusing commands), then 'member-add' against any current member with
the joiner's mesh and client addresses. The joint-quorum commit
bootstraps the joiner's state; it serves once the new epoch reaches it.`)
	os.Exit(2)
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	id := fs.String("id", "", "replica ID (must appear in -peers)")
	listen := fs.String("listen", "", "replica-mesh listen address (host:port)")
	clientListen := fs.String("client-listen", "", "client listen address (default: mesh port + 1000)")
	peersFlag := fs.String("peers", "", "comma-separated id=addr pairs for the full cluster")
	batch := fs.Duration("batch", 0, "per-key batching window (0 disables; the paper evaluated 5ms)")
	payload := fs.String("payload", crdt.TypeGCounter, "CRDT type of keys without a type prefix")
	transfer := fs.String("state-transfer", "full", "replica-wire state transfer: full, digest, or delta (docs/PROTOCOL.md §3; use one mode cluster-wide)")
	lease := fs.Bool("lease", true, "round-lease query fast path (docs/PROTOCOL.md §5); safe in mixed clusters — leases only form when every quorum member advertises support")
	dataDir := fs.String("data-dir", "", "snapshot directory for crash recovery; a killed replica re-exec'd with the same directory serves its pre-crash data (empty: volatile)")
	recoverFlag := fs.String("recover", "strict", "corrupt-snapshot policy at startup: strict (refuse to start) or ignore-corrupt (affected keys start fresh and re-learn from the cluster)")
	fsync := fs.Bool("fsync", false, "fsync every snapshot write (survives power loss, not just process death)")
	shards := fs.Int("shards", 0, "key-sharded event loops per replica; keys hash to a shard and shards share nothing on the hot path (0: CRDTSMR_SHARDS env, else one per CPU)")
	maxConns := fs.Int("max-conns", 0, "client connection cap; further connections get one busy frame and a close (0: default 1024)")
	maxInflight := fs.Int("max-inflight", 0, "server-wide executing-request cap; excess is answered busy instead of queued (0: default 4096)")
	linkBudget := fs.Int("link-budget", 0, "per-peer replica-link byte budget in bytes/sec, delaying and coalescing MERGE traffic over it (0 disables)")
	join := fs.Bool("join", false, "start as a joiner: empty member set, refuses commands until an existing member reconfigures it in with member-add (-peers then lists the current members, for the mesh)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *id == "" || *listen == "" || *peersFlag == "" {
		return fmt.Errorf("serve requires -id, -listen, and -peers")
	}
	initial, err := crdt.New(*payload)
	if err != nil {
		return fmt.Errorf("-payload: %w (known types: %s)", err, strings.Join(crdt.Names(), ", "))
	}
	mode, err := core.ParseStateTransfer(*transfer)
	if err != nil {
		return fmt.Errorf("-state-transfer: %w", err)
	}
	recoverPolicy, err := persist.ParseRecoverPolicy(*recoverFlag)
	if err != nil {
		return fmt.Errorf("-recover: %w", err)
	}
	syncPolicy := persist.SyncNone
	if *fsync {
		syncPolicy = persist.SyncAlways
	}

	peers := map[transport.NodeID]string{}
	var members []transport.NodeID
	for _, pair := range strings.Split(*peersFlag, ",") {
		kv := strings.SplitN(strings.TrimSpace(pair), "=", 2)
		if len(kv) != 2 {
			return fmt.Errorf("bad peer %q (want id=addr)", pair)
		}
		peers[transport.NodeID(kv[0])] = kv[1]
		members = append(members, transport.NodeID(kv[0]))
	}
	if _, ok := peers[transport.NodeID(*id)]; !ok && !*join {
		return fmt.Errorf("-id %q does not appear in -peers (use -join to start outside the member set)", *id)
	}

	opts := core.DefaultOptions()
	opts.Lease = *lease

	var tcpErr error
	var mesh *transport.TCP
	node, err := cluster.NewNode(transport.NodeID(*id), cluster.Config{
		Members:       members,
		Joining:       *join,
		Initial:       initial,
		InitialForKey: server.TypedKeyInitial(*payload),
		Options:       opts,
		BatchInterval: *batch,
		StateTransfer: mode,
		Shards:        *shards,
		DataDir:       *dataDir,
		PersistSync:   syncPolicy,
		Recover:       recoverPolicy,
		LinkBudget:    *linkBudget,
	}, func(nid transport.NodeID, h transport.Handler) transport.Conn {
		remote := map[transport.NodeID]string{}
		for p, a := range peers {
			if p != nid {
				remote[p] = a
			}
		}
		t, err := transport.NewTCP(nid, *listen, remote, h)
		if err != nil {
			tcpErr = err
			return nopConn(nid)
		}
		mesh = t
		return t
	})
	if tcpErr != nil {
		return tcpErr
	}
	if err != nil {
		return err
	}
	defer node.Close()

	clientAddr := *clientListen
	if clientAddr == "" {
		clientAddr, err = plusThousand(*listen)
		if err != nil {
			return err
		}
	}
	// Advertise each member's client address for the members admin
	// command: every -peers entry is assumed to follow the mesh-port+1000
	// convention (member-add can register explicit addresses later), and
	// this replica's own entry uses the actual -client-listen address.
	memberAddrs := map[string]string{string(transport.NodeID(*id)): clientAddr}
	for p, a := range peers {
		if string(p) == *id {
			continue
		}
		if ca, err := plusThousand(a); err == nil {
			memberAddrs[string(p)] = ca
		}
	}
	srv, err := server.Start(node, clientAddr, server.Options{
		MaxConns:         *maxConns,
		MaxTotalInFlight: *maxInflight,
		MemberAddrs:      memberAddrs,
		RegisterPeer: func(pid, addr string) error {
			if mesh == nil {
				return fmt.Errorf("replica mesh transport is not running")
			}
			mesh.AddPeer(transport.NodeID(pid), addr)
			return nil
		},
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	durability := "volatile (no -data-dir)"
	if *dataDir != "" {
		durability = "snapshots in " + *dataDir
		if skipped := node.SkippedSnapshots(); skipped > 0 {
			fmt.Fprintf(os.Stderr, "crdtsmrd: warning: skipped %d corrupt snapshot(s) under -recover=ignore-corrupt; affected keys re-learn from the cluster\n", skipped)
		}
	}
	fmt.Printf("replica %s up: mesh %s, clients %s, default payload %s, state transfer %s, %d event-loop shard(s), %s\n",
		*id, *listen, srv.Addr(), *payload, mode, node.Shards(), durability)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("replica %s shutting down (%d client requests served)\n", *id, srv.Served())
	return nil
}

// nopConn is returned when the TCP transport failed to start, so NewNode
// can finish and the error surface cleanly instead of os.Exit mid-join.
type nopConn transport.NodeID

func (c nopConn) ID() transport.NodeID          { return transport.NodeID(c) }
func (c nopConn) Send(transport.NodeID, []byte) {}
func (c nopConn) Close() error                  { return nil }

func clientOp(op string, args []string) error {
	fs := flag.NewFlagSet(op, flag.ExitOnError)
	addrs := fs.String("addrs", "", "comma-separated client addresses of one or more replicas")
	key := fs.String("key", "", "object key")
	n := fs.Uint64("n", 1, "amount (inc, dec)")
	elem := fs.String("elem", "", "set element (add, remove)")
	value := fs.String("value", "", "register value (set)")
	member := fs.String("member", "", "replica ID (member-add, member-remove)")
	meshAddr := fs.String("mesh", "", "joiner's replica-mesh address (member-add)")
	clientAddr := fs.String("client-addr", "", "joiner's client address, advertised to members queries (member-add)")
	timeout := fs.Duration("timeout", 10*time.Second, "operation deadline")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addrs == "" {
		return fmt.Errorf("%s requires -addrs", op)
	}
	switch op {
	case "ping", "keys", "members":
	case "member-add", "member-remove":
		if *member == "" {
			return fmt.Errorf("%s requires -member", op)
		}
	default:
		if *key == "" {
			return fmt.Errorf("%s requires -key", op)
		}
	}

	c, err := client.New(strings.Split(*addrs, ","))
	if err != nil {
		return err
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	switch op {
	case "inc":
		// pn-counter keys increment through the PN handle; the type is
		// the key's first path segment (or the whole key), matching
		// server.TypedKeyInitial.
		if prefix, _, _ := strings.Cut(*key, "/"); prefix == crdt.TypePNCounter {
			if err := c.PNCounter(*key).Inc(ctx, *n); err != nil {
				return err
			}
		} else if err := c.Counter(*key).Inc(ctx, *n); err != nil {
			return err
		}
		fmt.Println("ok")
	case "dec":
		if err := c.PNCounter(*key).Dec(ctx, *n); err != nil {
			return err
		}
		fmt.Println("ok")
	case "add":
		if err := c.Set(*key).Add(ctx, *elem); err != nil {
			return err
		}
		fmt.Println("ok")
	case "remove":
		if err := c.Set(*key).Remove(ctx, *elem); err != nil {
			return err
		}
		fmt.Println("ok")
	case "set":
		if err := c.Register(*key).Store(ctx, *value); err != nil {
			return err
		}
		fmt.Println("ok")
	case "get":
		st, info, err := c.Query(ctx, *key)
		if err != nil {
			return err
		}
		fmt.Printf("%v rtts=%d attempts=%d path=%v\n", st, info.RoundTrips, info.Attempts, info.Path)
	case "ping":
		start := time.Now()
		if err := c.Ping(ctx); err != nil {
			return err
		}
		fmt.Printf("pong (%s)\n", time.Since(start).Round(time.Microsecond))
	case "keys":
		keys, err := c.Keys(ctx)
		if err != nil {
			return err
		}
		for _, k := range keys {
			if k == "" {
				k = "(default)"
			}
			fmt.Println(k)
		}
	case "members":
		epoch, members, err := c.Members(ctx)
		if err != nil {
			return err
		}
		printMembers(epoch, members)
	case "member-add":
		epoch, members, err := c.MemberAdd(ctx, *member, *meshAddr, *clientAddr)
		if err != nil {
			return err
		}
		printMembers(epoch, members)
	case "member-remove":
		epoch, members, err := c.MemberRemove(ctx, *member)
		if err != nil {
			return err
		}
		printMembers(epoch, members)
	}
	return nil
}

func printMembers(epoch uint64, members []client.Member) {
	fmt.Printf("epoch %d, %d member(s):\n", epoch, len(members))
	for _, m := range members {
		addr := m.Addr
		if addr == "" {
			addr = "(no advertised client address)"
		}
		fmt.Printf("  %s\t%s\n", m.ID, addr)
	}
}

// plusThousand derives the default client-facing port: mesh port + 1000.
func plusThousand(listen string) (string, error) {
	host, port, err := net.SplitHostPort(listen)
	if err != nil {
		return "", fmt.Errorf("bad listen address %q: %w", listen, err)
	}
	p, err := strconv.Atoi(port)
	if err != nil {
		return "", fmt.Errorf("bad listen port %q", port)
	}
	return net.JoinHostPort(host, strconv.Itoa(p+1000)), nil
}
