package main

// End-to-end crash recovery of the real daemon: build the binary, run a
// 3-node cluster with per-node -data-dir, write through the public
// client, kill -9 every process, re-exec them with the same directories,
// and read the data back. Nothing survives in memory between the two
// generations — what the restarted cluster serves came off disk, which is
// the acceptance test of the paper's log-free recovery claim.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"crdtsmr/client"
)

// freePorts reserves n distinct TCP ports by listening and closing.
func freePorts(t *testing.T, n int) []int {
	t.Helper()
	ports := make([]int, n)
	lns := make([]net.Listener, n)
	for i := range ports {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		ports[i] = ln.Addr().(*net.TCPAddr).Port
	}
	for _, ln := range lns {
		_ = ln.Close()
	}
	return ports
}

func buildDaemon(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "crdtsmrd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	return bin
}

type daemonSpec struct {
	id         string
	meshPort   int
	clientPort int
	dataDir    string
}

func startDaemon(t *testing.T, bin, peers string, sp daemonSpec) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "serve",
		"-id", sp.id,
		"-listen", fmt.Sprintf("127.0.0.1:%d", sp.meshPort),
		"-client-listen", fmt.Sprintf("127.0.0.1:%d", sp.clientPort),
		"-peers", peers,
		"-data-dir", sp.dataDir,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start %s: %v", sp.id, err)
	}
	return cmd
}

// waitReady pings the daemon's client port until it answers.
func waitReady(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		c, err := client.New([]string{addr}, client.WithDialTimeout(time.Second))
		if err == nil {
			ctx, cancel := context.WithTimeout(context.Background(), time.Second)
			err = c.Ping(ctx)
			cancel()
			_ = c.Close()
			if err == nil {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became ready", addr)
}

func TestKillDashNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and execs the daemon")
	}
	bin := buildDaemon(t)
	ports := freePorts(t, 6)
	base := t.TempDir()

	specs := make([]daemonSpec, 3)
	peers := ""
	for i := range specs {
		id := fmt.Sprintf("n%d", i+1)
		specs[i] = daemonSpec{
			id:         id,
			meshPort:   ports[i],
			clientPort: ports[3+i],
			dataDir:    filepath.Join(base, id),
		}
		if i > 0 {
			peers += ","
		}
		peers += fmt.Sprintf("%s=127.0.0.1:%d", id, ports[i])
	}
	clientAddrs := make([]string, 3)
	for i, sp := range specs {
		clientAddrs[i] = fmt.Sprintf("127.0.0.1:%d", sp.clientPort)
	}

	// Generation 1: start, write, verify.
	gen1 := make([]*exec.Cmd, 3)
	for i, sp := range specs {
		gen1[i] = startDaemon(t, bin, peers, sp)
	}
	killAll := func(cmds []*exec.Cmd) {
		for _, cmd := range cmds {
			if cmd.Process != nil {
				_ = cmd.Process.Signal(syscall.SIGKILL)
			}
		}
		for _, cmd := range cmds {
			_ = cmd.Wait()
		}
	}
	defer killAll(gen1)
	for _, addr := range clientAddrs {
		waitReady(t, addr)
	}

	c, err := client.New(clientAddrs,
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 12, Backoff: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := c.Counter("views").Inc(ctx, 7); err != nil {
		t.Fatalf("gen1 inc: %v", err)
	}
	if err := c.Set("or-set/sessions").Add(ctx, "alice"); err != nil {
		t.Fatalf("gen1 add: %v", err)
	}
	if v, err := c.Counter("views").Value(ctx); err != nil || v != 7 {
		t.Fatalf("gen1 read = %d (%v), want 7", v, err)
	}
	_ = c.Close()

	// kill -9 the whole cluster: no shutdown hooks, no flushes — the
	// snapshots already on disk are all that survives.
	killAll(gen1)

	// Generation 2: same binary, same -data-dirs, same ports.
	gen2 := make([]*exec.Cmd, 3)
	for i, sp := range specs {
		gen2[i] = startDaemon(t, bin, peers, sp)
	}
	defer killAll(gen2)
	for _, addr := range clientAddrs {
		waitReady(t, addr)
	}

	c2, err := client.New(clientAddrs,
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 12, Backoff: 50 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if v, err := c2.Counter("views").Value(ctx); err != nil || v != 7 {
		t.Fatalf("post-kill read = %d (%v), want 7", v, err)
	}
	elems, err := c2.Set("or-set/sessions").Elements(ctx)
	if err != nil || len(elems) != 1 || elems[0] != "alice" {
		t.Fatalf("post-kill or-set = %v (%v), want [alice]", elems, err)
	}
	// The recovered cluster must keep accepting writes.
	if err := c2.Counter("views").Inc(ctx, 3); err != nil {
		t.Fatalf("post-kill inc: %v", err)
	}
	if v, err := c2.Counter("views").Value(ctx); err != nil || v != 10 {
		t.Fatalf("post-kill second read = %d (%v), want 10", v, err)
	}
}
