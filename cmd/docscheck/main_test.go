package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoDocs runs the real checks against the repository, so `go test`
// fails the moment a maintained doc link breaks or a README example
// drifts from gofmt.
func TestRepoDocs(t *testing.T) {
	root := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(root, "README.md")); err != nil {
		t.Skipf("repo root not found: %v", err)
	}
	for _, err := range Check(root) {
		t.Error(err)
	}
}

func TestCheckLinks(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "exists.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := filepath.Join(root, "README.md")
	text := "[ok](exists.md) [anchor](exists.md#sec) [ext](https://example.com) [page](#sec)\n[broken](missing.md)\n[out](../escape.md)\n"
	errs := checkLinks(root, doc, text)
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want 2 (broken + escape): %v", len(errs), errs)
	}
}

func TestCheckGoBlocks(t *testing.T) {
	good := "intro\n```go\nx := 1\nif x > 0 {\n\tfmt.Println(x)\n}\n```\n"
	if errs := checkGoBlocks("doc", good); len(errs) != 0 {
		t.Fatalf("clean block rejected: %v", errs)
	}
	spaces := "```go\nif true {\n    fmt.Println(1)\n}\n```\n" // 4-space indent
	if errs := checkGoBlocks("doc", spaces); len(errs) == 0 {
		t.Fatal("space-indented block accepted")
	}
	unparsable := "```go\nfunc {{{\n```\n"
	if errs := checkGoBlocks("doc", unparsable); len(errs) == 0 {
		t.Fatal("unparsable block accepted")
	}
	fullFile := "```go\npackage main\n\nfunc main() {}\n```\n"
	if errs := checkGoBlocks("doc", fullFile); len(errs) != 0 {
		t.Fatalf("full-file block rejected: %v", errs)
	}
	unterminated := "```go\nx := 1\n"
	if errs := checkGoBlocks("doc", unterminated); len(errs) == 0 {
		t.Fatal("unterminated block accepted")
	}
}

func TestCheckClientShim(t *testing.T) {
	root := t.TempDir()
	shim := filepath.Join(root, "internal", "client")
	if err := os.MkdirAll(shim, 0o755); err != nil {
		t.Fatal(err)
	}

	// An empty shim (doc.go only, nothing exported) passes.
	writeFile := func(path, content string) {
		t.Helper()
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	writeFile(filepath.Join(shim, "doc.go"), "// Deprecated: gone.\npackage client\n")
	if errs := checkClientShim(root); len(errs) != 0 {
		t.Fatalf("empty shim rejected: %v", errs)
	}

	// Any exported symbol regrowing in the shim fails: a func, a type,
	// and a const each count once.
	writeFile(filepath.Join(shim, "regrown.go"),
		"package client\n\nconst Exported = 1\n\ntype Client struct{}\n\nfunc New() *Client { return nil }\n\nfunc internalOnly() {}\n")
	if errs := checkClientShim(root); len(errs) != 3 {
		t.Fatalf("regrown exports: got %d errors, want 3: %v", len(errs), errs)
	}
	if err := os.Remove(filepath.Join(shim, "regrown.go")); err != nil {
		t.Fatal(err)
	}

	// A nested package under the shim cannot smuggle exports past the
	// guard either.
	writeFile(filepath.Join(shim, "v2", "api.go"),
		"package v2\n\nfunc Smuggled() {}\n")
	if errs := checkClientShim(root); len(errs) != 1 {
		t.Fatalf("nested regrown export: got %d errors, want 1: %v", len(errs), errs)
	}
	if err := os.RemoveAll(filepath.Join(shim, "v2")); err != nil {
		t.Fatal(err)
	}

	// Importing the shim — or anything nested under it — from anywhere
	// else in the tree fails.
	writeFile(filepath.Join(root, "cmd", "x", "main.go"),
		"package main\n\nimport (\n\t_ \"crdtsmr/internal/client\"\n\t_ \"crdtsmr/internal/client/v2\"\n)\n\nfunc main() {}\n")
	if errs := checkClientShim(root); len(errs) != 2 {
		t.Fatalf("shim imports: got %d errors, want 2: %v", len(errs), errs)
	}

	// A deleted shim satisfies the guard.
	if errs := checkClientShim(t.TempDir()); len(errs) != 0 {
		t.Fatalf("missing shim rejected: %v", errs)
	}
}
