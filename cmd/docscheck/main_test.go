package main

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRepoDocs runs the real checks against the repository, so `go test`
// fails the moment a maintained doc link breaks or a README example
// drifts from gofmt.
func TestRepoDocs(t *testing.T) {
	root := filepath.Join("..", "..")
	if _, err := os.Stat(filepath.Join(root, "README.md")); err != nil {
		t.Skipf("repo root not found: %v", err)
	}
	for _, err := range Check(root) {
		t.Error(err)
	}
}

func TestCheckLinks(t *testing.T) {
	root := t.TempDir()
	if err := os.WriteFile(filepath.Join(root, "exists.md"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	doc := filepath.Join(root, "README.md")
	text := "[ok](exists.md) [anchor](exists.md#sec) [ext](https://example.com) [page](#sec)\n[broken](missing.md)\n[out](../escape.md)\n"
	errs := checkLinks(root, doc, text)
	if len(errs) != 2 {
		t.Fatalf("got %d errors, want 2 (broken + escape): %v", len(errs), errs)
	}
}

func TestCheckGoBlocks(t *testing.T) {
	good := "intro\n```go\nx := 1\nif x > 0 {\n\tfmt.Println(x)\n}\n```\n"
	if errs := checkGoBlocks("doc", good); len(errs) != 0 {
		t.Fatalf("clean block rejected: %v", errs)
	}
	spaces := "```go\nif true {\n    fmt.Println(1)\n}\n```\n" // 4-space indent
	if errs := checkGoBlocks("doc", spaces); len(errs) == 0 {
		t.Fatal("space-indented block accepted")
	}
	unparsable := "```go\nfunc {{{\n```\n"
	if errs := checkGoBlocks("doc", unparsable); len(errs) == 0 {
		t.Fatal("unparsable block accepted")
	}
	fullFile := "```go\npackage main\n\nfunc main() {}\n```\n"
	if errs := checkGoBlocks("doc", fullFile); len(errs) != 0 {
		t.Fatalf("full-file block rejected: %v", errs)
	}
	unterminated := "```go\nx := 1\n"
	if errs := checkGoBlocks("doc", unterminated); len(errs) == 0 {
		t.Fatal("unterminated block accepted")
	}
}
