// Command docscheck is the documentation-and-API gate run by CI: it
// fails on broken intra-repo markdown links in the maintained docs
// (README.md and docs/*.md), on gofmt drift or parse errors in the Go
// code blocks of README.md, and on any regrowth of the deprecated
// internal/client shim (new exported symbols there, or in-tree imports
// of it — the client library lives in the public crdtsmr/client package
// now; see apiguard.go).
//
//	go run ./cmd/docscheck [repo-root]
package main

import (
	"fmt"
	"os"
	"path/filepath"
)

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	errs := Check(root)
	for _, err := range errs {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
	}
	if len(errs) > 0 {
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// Check runs every documentation check under root and returns the
// failures.
func Check(root string) []error {
	var errs []error
	docs := []string{filepath.Join(root, "README.md")}
	globbed, _ := filepath.Glob(filepath.Join(root, "docs", "*.md"))
	docs = append(docs, globbed...)
	for _, doc := range docs {
		data, err := os.ReadFile(doc)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", doc, err))
			continue
		}
		errs = append(errs, checkLinks(root, doc, string(data))...)
	}
	readme := filepath.Join(root, "README.md")
	if data, err := os.ReadFile(readme); err == nil {
		errs = append(errs, checkGoBlocks(readme, string(data))...)
	}
	errs = append(errs, checkClientShim(root)...)
	return errs
}
