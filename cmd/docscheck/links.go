package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// linkRE matches inline markdown links [text](target). Images and
// reference-style links do not occur in this repository's docs.
var linkRE = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

// checkLinks verifies every relative link in doc resolves to a file or
// directory in the repository. External schemes and pure in-page anchors
// are skipped; a relative link's anchor fragment is stripped before the
// existence check (anchor validity is markdown-renderer-specific).
func checkLinks(root, doc, text string) []error {
	var errs []error
	for lineNo, line := range strings.Split(text, "\n") {
		for _, m := range linkRE.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") || strings.HasPrefix(target, "#") {
				continue
			}
			target, _, _ = strings.Cut(target, "#")
			resolved := filepath.Join(filepath.Dir(doc), target)
			if !within(root, resolved) {
				errs = append(errs, fmt.Errorf("%s:%d: link %q escapes the repository", doc, lineNo+1, m[1]))
				continue
			}
			if _, err := os.Stat(resolved); err != nil {
				errs = append(errs, fmt.Errorf("%s:%d: broken link %q (%s does not exist)", doc, lineNo+1, m[1], resolved))
			}
		}
	}
	return errs
}

// within reports whether path stays inside root after cleaning.
func within(root, path string) bool {
	rel, err := filepath.Rel(root, path)
	if err != nil {
		return false
	}
	return rel == "." || (!strings.HasPrefix(rel, ".."+string(filepath.Separator)) && rel != "..")
}
