package main

// The API guard for the deprecated internal/client shim. The client
// library is public (crdtsmr/client); internal/client survives only as an
// empty package so stale references fail loudly at the import site with a
// deprecation notice instead of a missing-package error. Two invariants
// keep it that way:
//
//  1. internal/client exports nothing — no types, funcs, consts, vars, or
//     methods may regrow there;
//  2. no Go file in the repository imports crdtsmr/internal/client.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// shimImportPath is the import path frozen by the guard.
const shimImportPath = "crdtsmr/internal/client"

// checkClientShim enforces both invariants under root. A missing
// internal/client directory satisfies the guard (deleting the shim
// outright is fine); parse failures are reported, not ignored.
func checkClientShim(root string) []error {
	var errs []error
	errs = append(errs, checkShimExportsNothing(filepath.Join(root, "internal", "client"))...)
	errs = append(errs, checkShimUnimported(root)...)
	return errs
}

func checkShimExportsNothing(dir string) []error {
	if _, err := os.Stat(dir); os.IsNotExist(err) {
		return nil
	}
	var errs []error
	fset := token.NewFileSet()
	// Walk recursively: a nested package (internal/client/v2) would
	// otherwise be an importable way around the freeze.
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			errs = append(errs, fmt.Errorf("apiguard: %w", err))
			return nil
		}
		for _, name := range exportedDecls(file) {
			errs = append(errs, fmt.Errorf(
				"apiguard: %s exports %q — the internal/client shim is frozen, add API to the public client package instead",
				path, name))
		}
		return nil
	})
	if err != nil {
		errs = append(errs, fmt.Errorf("apiguard: %w", err))
	}
	return errs
}

// exportedDecls lists the exported top-level identifiers of one file:
// types, funcs, methods (on any receiver), consts, and vars.
func exportedDecls(file *ast.File) []string {
	var names []string
	add := func(id *ast.Ident) {
		if id != nil && id.IsExported() {
			names = append(names, id.Name)
		}
	}
	for _, decl := range file.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			add(d.Name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch sp := spec.(type) {
				case *ast.TypeSpec:
					add(sp.Name)
				case *ast.ValueSpec:
					for _, id := range sp.Names {
						add(id)
					}
				}
			}
		}
	}
	return names
}

func checkShimUnimported(root string) []error {
	var errs []error
	fset := token.NewFileSet()
	shimDir := filepath.Join(root, "internal", "client")
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			// Skip VCS and tool state; the shim may import itself freely.
			if name := d.Name(); name == ".git" || name == ".claude" {
				return filepath.SkipDir
			}
			if path == shimDir {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		file, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			errs = append(errs, fmt.Errorf("apiguard: %w", err))
			return nil
		}
		for _, imp := range file.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			// Match the shim and anything nested under it.
			if p == shimImportPath || strings.HasPrefix(p, shimImportPath+"/") {
				errs = append(errs, fmt.Errorf(
					"apiguard: %s imports %s — import the public crdtsmr/client package instead", path, p))
			}
		}
		return nil
	})
	if err != nil {
		errs = append(errs, fmt.Errorf("apiguard: %w", err))
	}
	return errs
}
