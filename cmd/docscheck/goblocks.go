package main

import (
	"fmt"
	"go/format"
	"strings"
)

// checkGoBlocks extracts ```go fenced blocks and verifies each one is
// parseable Go at gofmt's formatting. Blocks may be full files (starting
// with a package clause) or statement fragments, which are formatted as
// the body of a function; either way the block text must already be in
// gofmt form (tabs for indentation), so README examples never drift from
// the style of the code they illustrate.
func checkGoBlocks(doc, text string) []error {
	var errs []error
	lines := strings.Split(text, "\n")
	for i := 0; i < len(lines); i++ {
		if strings.TrimRight(lines[i], " ") != "```go" {
			continue
		}
		start := i + 1
		end := start
		for end < len(lines) && strings.TrimRight(lines[end], " ") != "```" {
			end++
		}
		if end == len(lines) {
			errs = append(errs, fmt.Errorf("%s:%d: unterminated ```go block", doc, start))
			break
		}
		block := strings.Join(lines[start:end], "\n") + "\n"
		if err := checkGoBlock(block); err != nil {
			errs = append(errs, fmt.Errorf("%s:%d: %w", doc, start, err))
		}
		i = end
	}
	return errs
}

func checkGoBlock(block string) error {
	if strings.HasPrefix(block, "package ") || strings.HasPrefix(block, "// ") && strings.Contains(block, "\npackage ") {
		formatted, err := format.Source([]byte(block))
		if err != nil {
			return fmt.Errorf("code block does not parse: %v", err)
		}
		if string(formatted) != block {
			return fmt.Errorf("code block is not gofmt-formatted")
		}
		return nil
	}
	// Statement fragment: format it as a function body. If the fragment
	// is gofmt-clean, formatting the wrapper reproduces it exactly with
	// one leading tab per non-empty line.
	var b strings.Builder
	b.WriteString("package p\n\nfunc _() {\n")
	for _, line := range strings.Split(strings.TrimRight(block, "\n"), "\n") {
		if line != "" {
			b.WriteString("\t")
		}
		b.WriteString(line)
		b.WriteString("\n")
	}
	b.WriteString("}\n")
	wrapped := b.String()
	formatted, err := format.Source([]byte(wrapped))
	if err != nil {
		return fmt.Errorf("code block does not parse as statements: %v", err)
	}
	if string(formatted) != wrapped {
		return fmt.Errorf("code block is not gofmt-formatted (tabs, gofmt spacing)")
	}
	return nil
}
