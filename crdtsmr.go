// Package crdtsmr is the public facade of the repository: linearizable
// state machine replication of state-based CRDTs without logs or leaders,
// implementing Skrzypczak, Schintke, Schütt (PODC 2019).
//
// A Cluster replicates a keyspace of CRDT objects over N nodes. Updates
// complete in a single round trip by broadcasting merged state;
// linearizable reads use the paper's lattice-agreement query protocol (one
// round trip on a quiet replica set, two under contention, with retries
// only on conflicts). There is no leader to elect and no command log to
// truncate: each replica's protocol state beyond the payload itself is a
// single round counter per object.
//
// Quickstart (single object):
//
//	cl, _ := crdtsmr.NewLocalCluster(3, crdtsmr.NewGCounter())
//	defer cl.Close()
//	ctr := cl.Counter("n1")             // handle bound to replica n1
//	_ = ctr.Inc(ctx, 1)                 // linearizable update, 1 round trip
//	v, _ := ctr.Value(ctx)              // linearizable read
//
// Multi-object store: because the protocol keeps no cross-command log,
// replication instances compose per key — every key is an independent
// lightweight SMR group sharing the node's event loop and connection, with
// no ordering machinery between keys. Object(key) addresses one of them;
// objects are instantiated lazily on first touch and each key is
// linearizable independently:
//
//	cl, _ := crdtsmr.NewLocalCluster(3, crdtsmr.NewGCounter())
//	views := cl.Object("article/42").Counter("n1")
//	_ = views.Inc(ctx, 1)               // independent of every other key
//	v, _ := cl.Object("article/42").Counter("n3").Value(ctx)
//
// Keys default to fresh zero values of the cluster's payload type; use
// WithObjectInitial to give chosen keys different CRDT types (counters,
// sets, and registers can share one cluster).
//
// To reach a served cluster over the network instead, use the public
// client package crdtsmr/client (docs/CLIENT.md); cmd/crdtsmrd is the
// daemon it talks to. The packages under internal/ hold the
// implementation: the protocol (internal/core), the CRDT library
// (internal/crdt), transports (internal/transport), the runtime
// (internal/cluster), the sharded store (internal/store), the network
// serving layer (internal/server — see docs/PROTOCOL.md for the wire
// format), the Multi-Paxos and Raft baselines, the correctness checker,
// and the benchmark harness. For a map from the paper's sections to the
// packages, see docs/ARCHITECTURE.md.
package crdtsmr

import (
	"context"
	"fmt"
	"time"

	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/store"
	"crdtsmr/internal/transport"
)

// Re-exported core types, so downstream code only imports this package.
type (
	// State is a CRDT payload: an element of a join semilattice.
	State = crdt.State
	// Update is a monotone update function applied at the local replica.
	Update = crdt.Update
	// NodeID identifies a replica.
	NodeID = transport.NodeID
	// QueryStats describes how a read was processed (round trips, path).
	QueryStats = core.QueryStats
	// GCounter is the grow-only counter of the paper's Algorithm 1.
	GCounter = crdt.GCounter
	// PNCounter supports increments and decrements.
	PNCounter = crdt.PNCounter
	// ORSet is an observed-remove (add-wins) set.
	ORSet = crdt.ORSet
	// LWWRegister is a last-writer-wins register.
	LWWRegister = crdt.LWWRegister
	// LWWMap is a last-writer-wins map.
	LWWMap = crdt.LWWMap
)

// Constructors for the common payloads.
var (
	// NewGCounter returns a zero grow-only counter.
	NewGCounter = crdt.NewGCounter
	// NewPNCounter returns a zero increment/decrement counter.
	NewPNCounter = crdt.NewPNCounter
	// NewORSet returns an empty observed-remove set.
	NewORSet = crdt.NewORSet
	// NewLWWRegister returns an unwritten last-writer-wins register.
	NewLWWRegister = crdt.NewLWWRegister
	// NewLWWMap returns an empty last-writer-wins map.
	NewLWWMap = crdt.NewLWWMap
)

// DefaultKey is the object key the single-object API (Update, Query,
// Counter, Set) operates on.
const DefaultKey = cluster.DefaultKey

// Option configures a cluster.
type Option func(*options)

type options struct {
	batch         time.Duration
	meshDelay     [2]time.Duration
	seed          int64
	initialForKey func(key string) State
}

// WithBatching enables per-replica command batching (§3.6 of the paper),
// applied per key; the paper's evaluation uses 5 ms windows.
func WithBatching(window time.Duration) Option {
	return func(o *options) { o.batch = window }
}

// WithNetworkDelay emulates per-message network delay between replicas of
// a local cluster.
func WithNetworkDelay(min, max time.Duration) Option {
	return func(o *options) { o.meshDelay = [2]time.Duration{min, max} }
}

// WithSeed fixes the emulated network's RNG seed.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// WithObjectInitial sets the initial payload per object key, letting keys
// hold different CRDT types. The function must be deterministic (every
// replica evaluates it independently when a key is first touched);
// returning nil rejects the key. Keys it does not special-case should
// return a fresh zero payload of the desired type.
func WithObjectInitial(initial func(key string) State) Option {
	return func(o *options) { o.initialForKey = initial }
}

// Cluster is a running replica group serving a keyspace of CRDT objects.
type Cluster struct {
	mesh *transport.Mesh
	st   *store.Store
	ids  []NodeID
}

// NewLocalCluster starts n replicas in this process connected by an
// emulated network. initial is the payload of the default object and the
// payload type fresh keys start from. Replica IDs are "n1".."nN".
func NewLocalCluster(n int, initial State, opts ...Option) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("crdtsmr: need at least one replica, got %d", n)
	}
	var o options
	o.seed = 1
	for _, opt := range opts {
		opt(&o)
	}
	meshOpts := []transport.MeshOption{transport.WithSeed(o.seed)}
	if o.meshDelay[1] > 0 {
		meshOpts = append(meshOpts, transport.WithDelay(o.meshDelay[0], o.meshDelay[1]))
	}
	mesh := transport.NewMesh(meshOpts...)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("n%d", i+1))
	}
	st, err := store.New(mesh, cluster.Config{
		Members:       ids,
		Initial:       initial,
		InitialForKey: o.initialForKey,
		Options:       core.DefaultOptions(),
		BatchInterval: o.batch,
	})
	if err != nil {
		mesh.Close()
		return nil, err
	}
	return &Cluster{mesh: mesh, st: st, ids: ids}, nil
}

// NodeIDs returns the replica IDs in order.
func (c *Cluster) NodeIDs() []NodeID { return append([]NodeID(nil), c.ids...) }

// Update applies a monotone update function to the default object at the
// named replica and waits for it to be durable on a quorum (one round
// trip).
func (c *Cluster) Update(ctx context.Context, at NodeID, fu Update) error {
	_, err := c.st.Update(ctx, at, DefaultKey, fu)
	return err
}

// Query learns a linearizable state of the default object at the named
// replica.
func (c *Cluster) Query(ctx context.Context, at NodeID) (State, QueryStats, error) {
	return c.st.Query(ctx, at, DefaultKey)
}

// Keys returns the object keys instantiated at the named replica, sorted
// (the default object is key "").
func (c *Cluster) Keys(at NodeID) []string { return c.st.Keys(at) }

// Crash simulates a crash of the named replica; its state is retained
// (crash-recovery model).
func (c *Cluster) Crash(id NodeID) { c.st.Crash(id) }

// Recover brings a crashed replica back.
func (c *Cluster) Recover(id NodeID) { c.st.Recover(id) }

// Close stops every replica.
func (c *Cluster) Close() {
	c.st.Close()
	c.mesh.Close()
}

// Object addresses one key of the cluster's keyspace. Each key is an
// independent replication instance: linearizable on its own, ordered with
// no other key, instantiated on first touch.
func (c *Cluster) Object(key string) *Object {
	return &Object{c: c, key: key}
}

// Object is a handle on one replicated CRDT object of the keyspace.
type Object struct {
	c   *Cluster
	key string
}

// Key returns the object's key.
func (o *Object) Key() string { return o.key }

// Update applies a monotone update function to this object at the named
// replica (one round trip).
func (o *Object) Update(ctx context.Context, at NodeID, fu Update) error {
	_, err := o.c.st.Update(ctx, at, o.key, fu)
	return err
}

// Query learns a linearizable state of this object at the named replica.
func (o *Object) Query(ctx context.Context, at NodeID) (State, QueryStats, error) {
	return o.c.st.Query(ctx, at, o.key)
}

// Counter returns a typed G-Counter handle on this object, bound to the
// given replica.
func (o *Object) Counter(at NodeID) *Counter {
	return &Counter{obj: o, at: at}
}

// Set returns a typed OR-Set handle on this object, bound to the given
// replica. A Set handle is not safe for concurrent use; create one handle
// per client goroutine.
func (o *Object) Set(at NodeID) *Set {
	return &Set{obj: o, at: at}
}

// Register returns a typed last-writer-wins register handle on this
// object, bound to the given replica.
func (o *Object) Register(at NodeID) *Register {
	return &Register{obj: o, at: at}
}

// Counter returns a typed handle for the default object's G-Counter
// payload, bound to the given replica. All handle operations are
// linearizable. For keyed counters use Object(key).Counter(at).
func (c *Cluster) Counter(at NodeID) *Counter {
	return c.Object(DefaultKey).Counter(at)
}

// Counter is a typed client for a replicated G-Counter.
type Counter struct {
	obj *Object
	at  NodeID
}

// Inc increments the counter by n.
func (h *Counter) Inc(ctx context.Context, n uint64) error {
	slot := string(h.at)
	return h.obj.Update(ctx, h.at, func(s State) (State, error) {
		g, ok := s.(*GCounter)
		if !ok {
			return nil, fmt.Errorf("crdtsmr: payload of %q is %T, not a G-Counter", h.obj.key, s)
		}
		return g.Inc(slot, n), nil
	})
}

// Value reads the counter.
func (h *Counter) Value(ctx context.Context) (uint64, error) {
	s, _, err := h.obj.Query(ctx, h.at)
	if err != nil {
		return 0, err
	}
	g, ok := s.(*GCounter)
	if !ok {
		return 0, fmt.Errorf("crdtsmr: payload of %q is %T, not a G-Counter", h.obj.key, s)
	}
	return g.Value(), nil
}

// Set returns a typed handle for the default object's OR-Set payload bound
// to the given replica. A Set handle is not safe for concurrent use;
// create one handle per client goroutine. For keyed sets use
// Object(key).Set(at).
func (c *Cluster) Set(at NodeID) *Set {
	return c.Object(DefaultKey).Set(at)
}

// Set is a typed client for a replicated observed-remove set.
type Set struct {
	obj *Object
	at  NodeID
	seq uint64
}

// Add inserts an element (add-wins on concurrent removal).
func (h *Set) Add(ctx context.Context, element string) error {
	h.seq++
	seq := h.seq
	actor := string(h.at) + "/" + element
	return h.obj.Update(ctx, h.at, func(s State) (State, error) {
		set, ok := s.(*ORSet)
		if !ok {
			return nil, fmt.Errorf("crdtsmr: payload of %q is %T, not an OR-Set", h.obj.key, s)
		}
		return set.Add(element, actor, seq), nil
	})
}

// Remove deletes the element's observed additions.
func (h *Set) Remove(ctx context.Context, element string) error {
	return h.obj.Update(ctx, h.at, func(s State) (State, error) {
		set, ok := s.(*ORSet)
		if !ok {
			return nil, fmt.Errorf("crdtsmr: payload of %q is %T, not an OR-Set", h.obj.key, s)
		}
		return set.Remove(element), nil
	})
}

// Elements reads the membership, linearizably.
func (h *Set) Elements(ctx context.Context) ([]string, error) {
	s, _, err := h.obj.Query(ctx, h.at)
	if err != nil {
		return nil, err
	}
	set, ok := s.(*ORSet)
	if !ok {
		return nil, fmt.Errorf("crdtsmr: payload of %q is %T, not an OR-Set", h.obj.key, s)
	}
	return set.Elements(), nil
}

// Register is a typed client for a replicated last-writer-wins register.
type Register struct {
	obj *Object
	at  NodeID
}

// Store writes the register. Concurrent writes resolve last-writer-wins by
// wall-clock timestamp with the replica ID as tie-breaker.
func (h *Register) Store(ctx context.Context, value string) error {
	ts := uint64(time.Now().UnixNano())
	actor := string(h.at)
	return h.obj.Update(ctx, h.at, func(s State) (State, error) {
		reg, ok := s.(*LWWRegister)
		if !ok {
			return nil, fmt.Errorf("crdtsmr: payload of %q is %T, not an LWW-Register", h.obj.key, s)
		}
		return reg.Set(value, ts, actor), nil
	})
}

// Load reads the register, linearizably. ok is false if the register was
// never written.
func (h *Register) Load(ctx context.Context) (value string, ok bool, err error) {
	s, _, err := h.obj.Query(ctx, h.at)
	if err != nil {
		return "", false, err
	}
	reg, isReg := s.(*LWWRegister)
	if !isReg {
		return "", false, fmt.Errorf("crdtsmr: payload of %q is %T, not an LWW-Register", h.obj.key, s)
	}
	val, ts, _ := reg.Value()
	return val, ts != 0, nil
}
