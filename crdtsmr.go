// Package crdtsmr is the public facade of the repository: linearizable
// state machine replication of state-based CRDTs without logs or leaders,
// implementing Skrzypczak, Schintke, Schütt (PODC 2019).
//
// A Cluster replicates one CRDT payload over N nodes. Updates complete in
// a single round trip by broadcasting merged state; linearizable reads use
// the paper's lattice-agreement query protocol (one round trip on a quiet
// replica set, two under contention, with retries only on conflicts).
// There is no leader to elect and no command log to truncate: each
// replica's protocol state beyond the payload itself is a single round
// counter.
//
// Quickstart:
//
//	cl, _ := crdtsmr.NewLocalCluster(3, crdtsmr.NewGCounter())
//	defer cl.Close()
//	ctr := cl.Counter("n1")             // handle bound to replica n1
//	_ = ctr.Inc(ctx, 1)                 // linearizable update, 1 round trip
//	v, _ := ctr.Value(ctx)              // linearizable read
//
// The packages under internal/ hold the implementation: the protocol
// (internal/core), the CRDT library (internal/crdt), transports
// (internal/transport), the runtime (internal/cluster), the Multi-Paxos
// and Raft baselines, the correctness checker, and the benchmark harness.
package crdtsmr

import (
	"context"
	"fmt"
	"time"

	"crdtsmr/internal/cluster"
	"crdtsmr/internal/core"
	"crdtsmr/internal/crdt"
	"crdtsmr/internal/transport"
)

// Re-exported core types, so downstream code only imports this package.
type (
	// State is a CRDT payload: an element of a join semilattice.
	State = crdt.State
	// Update is a monotone update function applied at the local replica.
	Update = crdt.Update
	// NodeID identifies a replica.
	NodeID = transport.NodeID
	// QueryStats describes how a read was processed (round trips, path).
	QueryStats = core.QueryStats
	// GCounter is the grow-only counter of the paper's Algorithm 1.
	GCounter = crdt.GCounter
	// PNCounter supports increments and decrements.
	PNCounter = crdt.PNCounter
	// ORSet is an observed-remove (add-wins) set.
	ORSet = crdt.ORSet
	// LWWMap is a last-writer-wins map.
	LWWMap = crdt.LWWMap
)

// Constructors for the common payloads.
var (
	// NewGCounter returns a zero grow-only counter.
	NewGCounter = crdt.NewGCounter
	// NewPNCounter returns a zero increment/decrement counter.
	NewPNCounter = crdt.NewPNCounter
	// NewORSet returns an empty observed-remove set.
	NewORSet = crdt.NewORSet
	// NewLWWMap returns an empty last-writer-wins map.
	NewLWWMap = crdt.NewLWWMap
)

// Option configures a cluster.
type Option func(*options)

type options struct {
	batch     time.Duration
	meshDelay [2]time.Duration
	seed      int64
}

// WithBatching enables per-replica command batching (§3.6 of the paper);
// the paper's evaluation uses 5 ms windows.
func WithBatching(window time.Duration) Option {
	return func(o *options) { o.batch = window }
}

// WithNetworkDelay emulates per-message network delay between replicas of
// a local cluster.
func WithNetworkDelay(min, max time.Duration) Option {
	return func(o *options) { o.meshDelay = [2]time.Duration{min, max} }
}

// WithSeed fixes the emulated network's RNG seed.
func WithSeed(seed int64) Option {
	return func(o *options) { o.seed = seed }
}

// Cluster is a running replica group for one CRDT payload.
type Cluster struct {
	mesh  *transport.Mesh
	inner *cluster.Cluster
	ids   []NodeID
}

// NewLocalCluster starts n replicas in this process connected by an
// emulated network, replicating the given initial payload. Replica IDs are
// "n1".."nN".
func NewLocalCluster(n int, initial State, opts ...Option) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("crdtsmr: need at least one replica, got %d", n)
	}
	var o options
	o.seed = 1
	for _, opt := range opts {
		opt(&o)
	}
	meshOpts := []transport.MeshOption{transport.WithSeed(o.seed)}
	if o.meshDelay[1] > 0 {
		meshOpts = append(meshOpts, transport.WithDelay(o.meshDelay[0], o.meshDelay[1]))
	}
	mesh := transport.NewMesh(meshOpts...)
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = NodeID(fmt.Sprintf("n%d", i+1))
	}
	inner, err := cluster.New(mesh, cluster.Config{
		Members:       ids,
		Initial:       initial,
		Options:       core.DefaultOptions(),
		BatchInterval: o.batch,
	})
	if err != nil {
		mesh.Close()
		return nil, err
	}
	return &Cluster{mesh: mesh, inner: inner, ids: ids}, nil
}

// NodeIDs returns the replica IDs in order.
func (c *Cluster) NodeIDs() []NodeID { return append([]NodeID(nil), c.ids...) }

// Update applies a monotone update function at the named replica and waits
// for it to be durable on a quorum (one round trip).
func (c *Cluster) Update(ctx context.Context, at NodeID, fu Update) error {
	node := c.inner.Node(at)
	if node == nil {
		return fmt.Errorf("crdtsmr: unknown replica %s", at)
	}
	_, err := node.Update(ctx, fu)
	return err
}

// Query learns a linearizable state at the named replica.
func (c *Cluster) Query(ctx context.Context, at NodeID) (State, QueryStats, error) {
	node := c.inner.Node(at)
	if node == nil {
		return nil, QueryStats{}, fmt.Errorf("crdtsmr: unknown replica %s", at)
	}
	return node.Query(ctx)
}

// Crash simulates a crash of the named replica; its state is retained
// (crash-recovery model).
func (c *Cluster) Crash(id NodeID) { c.inner.Crash(id) }

// Recover brings a crashed replica back.
func (c *Cluster) Recover(id NodeID) { c.inner.Recover(id) }

// Close stops every replica.
func (c *Cluster) Close() {
	c.inner.Close()
	c.mesh.Close()
}

// Counter returns a typed handle for a replicated G-Counter payload, bound
// to the given replica. All handle operations are linearizable.
func (c *Cluster) Counter(at NodeID) *Counter {
	return &Counter{c: c, at: at}
}

// Counter is a typed client for a replicated G-Counter.
type Counter struct {
	c  *Cluster
	at NodeID
}

// Inc increments the counter by n.
func (h *Counter) Inc(ctx context.Context, n uint64) error {
	slot := string(h.at)
	return h.c.Update(ctx, h.at, func(s State) (State, error) {
		g, ok := s.(*GCounter)
		if !ok {
			return nil, fmt.Errorf("crdtsmr: payload is %T, not a G-Counter", s)
		}
		return g.Inc(slot, n), nil
	})
}

// Value reads the counter.
func (h *Counter) Value(ctx context.Context) (uint64, error) {
	s, _, err := h.c.Query(ctx, h.at)
	if err != nil {
		return 0, err
	}
	g, ok := s.(*GCounter)
	if !ok {
		return 0, fmt.Errorf("crdtsmr: payload is %T, not a G-Counter", s)
	}
	return g.Value(), nil
}

// Set returns a typed handle for a replicated OR-Set payload bound to the
// given replica. A Set handle is not safe for concurrent use; create one
// handle per client goroutine.
func (c *Cluster) Set(at NodeID) *Set {
	return &Set{c: c, at: at}
}

// Set is a typed client for a replicated observed-remove set.
type Set struct {
	c   *Cluster
	at  NodeID
	seq uint64
}

// Add inserts an element (add-wins on concurrent removal).
func (h *Set) Add(ctx context.Context, element string) error {
	h.seq++
	seq := h.seq
	actor := string(h.at) + "/" + element
	return h.c.Update(ctx, h.at, func(s State) (State, error) {
		set, ok := s.(*ORSet)
		if !ok {
			return nil, fmt.Errorf("crdtsmr: payload is %T, not an OR-Set", s)
		}
		return set.Add(element, actor, seq), nil
	})
}

// Remove deletes the element's observed additions.
func (h *Set) Remove(ctx context.Context, element string) error {
	return h.c.Update(ctx, h.at, func(s State) (State, error) {
		set, ok := s.(*ORSet)
		if !ok {
			return nil, fmt.Errorf("crdtsmr: payload is %T, not an OR-Set", s)
		}
		return set.Remove(element), nil
	})
}

// Elements reads the membership, linearizably.
func (h *Set) Elements(ctx context.Context) ([]string, error) {
	s, _, err := h.c.Query(ctx, h.at)
	if err != nil {
		return nil, err
	}
	set, ok := s.(*ORSet)
	if !ok {
		return nil, fmt.Errorf("crdtsmr: payload is %T, not an OR-Set", s)
	}
	return set.Elements(), nil
}
